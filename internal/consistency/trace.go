// Package consistency is the black-box auditing layer: it certifies (or
// refutes) the memory system's consistency guarantees from client-visible
// read/write traces alone, with no access to the implementation's commit
// order, admission sequence, or internals.
//
// The repo's strongest internal test — the seq-ordered differential oracle —
// needs the global commit sequence the dispatchers assign, so it can only
// audit an in-process backend. This package implements the trace-based
// alternative from Wei et al., "Verifying PRAM Consistency over Read/Write
// Traces of Data Replicas" (arXiv:1302.5161): given only what each client
// submitted and what each read returned, decide whether a legal ordering of
// the operations exists. Because it needs nothing but the traces, it can
// certify any backend — including a future networked one — which is the
// verification story for every scaling direction in the ROADMAP.
//
// Two consistency models are checkable (see Mode):
//
//   - PRAM (FIFO) consistency plus read-your-writes: for every client there
//     is a serialization of all writes and that client's reads respecting
//     every client's program order, in which each read returns the latest
//     preceding write. This is the contract of the single-dispatcher
//     frontend (which is in fact linearizable, hence PRAM).
//   - Per-variable linearizability (without real-time constraints, i.e.
//     per-variable sequential consistency): for every variable there is a
//     single total order of all operations on it, respecting program order,
//     in which each read returns the latest preceding write. This is
//     exactly the contract internal/shard promises across shards.
//
// Both checks require the "data uniqueness" condition of Wei et al.: no two
// writes to the same variable store the same value, so every read has an
// unambiguous dictating write. The Recorder below manufactures unique
// nonzero values for exactly this reason; Check rejects traces that violate
// uniqueness rather than guessing.
package consistency

import (
	"encoding/json"
	"fmt"
	"io"
)

// Op is one client-visible operation: a write of Val to Var, or a read of
// Var that returned Val. Failed marks operations whose future resolved with
// an error (e.g. protocol.ErrQuorumUnreachable in degraded mode): they
// carry no consistency obligation and are excluded from checking — except
// that a failed write whose value is later read must have taken effect
// after all, and is reinstated (see Report.Resurrected).
type Op struct {
	Write  bool   `json:"w,omitempty"`
	Var    uint64 `json:"var"`
	Val    uint64 `json:"val"`
	Failed bool   `json:"failed,omitempty"`
}

func (o Op) String() string {
	k := "read"
	if o.Write {
		k = "write"
	}
	s := fmt.Sprintf("%s(var=%d, val=%d)", k, o.Var, o.Val)
	if o.Failed {
		s += "[failed]"
	}
	return s
}

// Trace is a set of per-client operation streams: Trace[c] lists client c's
// operations in its program order. This is the checker's whole input — no
// timestamps, no commit sequence, nothing the clients could not observe
// themselves.
type Trace [][]Op

// Ops counts the operations in the trace.
func (t Trace) Ops() int {
	n := 0
	for _, c := range t {
		n += len(c)
	}
	return n
}

// Contract names the consistency guarantee a recorded run's service
// promised, so an offline checker knows which Mode(s) must certify.
type Contract string

const (
	// ContractTotalOrder: the service serializes all operations (the
	// single-dispatcher frontend, or a sharded service with S=1). Both
	// ModePRAM and ModePerVariable must certify.
	ContractTotalOrder Contract = "total-order"
	// ContractPerVariable: the service is linearizable per variable only
	// (a sharded service with S>1 — no cross-variable order exists, so
	// ModePRAM may legitimately fail). Only ModePerVariable must certify.
	ContractPerVariable Contract = "per-variable"
)

// Run is one recorded execution: a label, the contract the service under
// test promised, and the per-client trace.
type Run struct {
	Label    string   `json:"label"`
	Contract Contract `json:"contract"`
	Clients  Trace    `json:"clients"`
}

// TraceSet is the JSON artifact smembench dumps and cmd/consistencycheck
// ingests: one Run per measured cell (warm-up and repetition drives against
// one service instance belong to the same Run, since they share its store).
type TraceSet struct {
	Runs []Run `json:"runs"`
}

// WriteJSON writes the trace set as indented JSON.
func (ts *TraceSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ts)
}

// ReadTraceSet parses a TraceSet from JSON. It accepts the three shapes in
// the wild: a full smembench -trace dump (which nests the trace set under
// "consistency"), a bare TraceSet ({"runs": [...]}), and a single Run
// ({"label": ..., "clients": [...]}).
func ReadTraceSet(r io.Reader) (*TraceSet, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Runs        []Run     `json:"runs"`
		Consistency *TraceSet `json:"consistency"`
		Label       string    `json:"label"`
		Clients     Trace     `json:"clients"`
	}
	if err := json.Unmarshal(blob, &probe); err != nil {
		return nil, fmt.Errorf("consistency: parsing trace: %w", err)
	}
	switch {
	case probe.Consistency != nil && len(probe.Consistency.Runs) > 0:
		return probe.Consistency, nil
	case len(probe.Runs) > 0:
		return &TraceSet{Runs: probe.Runs}, nil
	case len(probe.Clients) > 0:
		return &TraceSet{Runs: []Run{{Label: probe.Label, Contract: ContractTotalOrder, Clients: probe.Clients}}}, nil
	}
	return nil, fmt.Errorf("consistency: no runs found in trace input")
}

// Recorder accumulates recorded runs. It hands out one RunRecorder per
// measured cell; the per-client ClientRecorders are lock-free (each belongs
// to exactly one client goroutine at a time).
type Recorder struct {
	runs []*RunRecorder
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Run opens a new recorded run with the given client count. Not safe for
// concurrent use with itself; experiments open runs sequentially.
func (r *Recorder) Run(label string, contract Contract, clients int) *RunRecorder {
	rr := &RunRecorder{label: label, contract: contract, clients: make([]ClientRecorder, clients)}
	for c := range rr.clients {
		rr.clients[c].id = uint64(c)
	}
	r.runs = append(r.runs, rr)
	return rr
}

// TraceSet snapshots every recorded run. Call after all drives finished.
func (r *Recorder) TraceSet() *TraceSet {
	ts := &TraceSet{}
	for _, rr := range r.runs {
		tr := make(Trace, len(rr.clients))
		for c := range rr.clients {
			tr[c] = rr.clients[c].ops
		}
		ts.Runs = append(ts.Runs, Run{Label: rr.label, Contract: rr.contract, Clients: tr})
	}
	return ts
}

// Ops counts the operations recorded so far across all runs.
func (r *Recorder) Ops() int {
	n := 0
	for _, rr := range r.runs {
		for c := range rr.clients {
			n += len(rr.clients[c].ops)
		}
	}
	return n
}

// RunRecorder collects one run's per-client streams.
type RunRecorder struct {
	label    string
	contract Contract
	clients  []ClientRecorder
}

// Client returns client c's recorder. The caller must ensure only one
// goroutine uses it at a time (successive drives against the same service
// may reuse client ids; the drives themselves are sequential).
func (rr *RunRecorder) Client(c int) *ClientRecorder { return &rr.clients[c] }

// ClientRecorder records one client's operations in program order and
// mints the unique write values the checker's data-uniqueness condition
// requires.
type ClientRecorder struct {
	id  uint64
	seq uint64
	ops []Op
}

// WriteValue returns the next unique nonzero value for this client to
// write: client id in the high bits, a per-client counter below. Values
// never collide across clients of one run and never equal the store's
// initial 0.
func (cr *ClientRecorder) WriteValue() uint64 {
	cr.seq++
	return (cr.id+1)<<40 | cr.seq
}

// Record appends one completed operation. failed marks operations whose
// future resolved with an error; their values carry no meaning.
func (cr *ClientRecorder) Record(write bool, v, val uint64, failed bool) {
	cr.ops = append(cr.ops, Op{Write: write, Var: v, Val: val, Failed: failed})
}
