package consistency

import (
	"math/rand"
	"testing"
)

func w(v, val uint64) Op       { return Op{Write: true, Var: v, Val: val} }
func r(v, val uint64) Op       { return Op{Var: v, Val: val} }
func failedW(v, val uint64) Op { return Op{Write: true, Var: v, Val: val, Failed: true} }
func failedR(v uint64) Op      { return Op{Var: v, Failed: true} }

func mustCertify(t *testing.T, tr Trace, mode Mode) *Report {
	t.Helper()
	rep := Check(tr, mode)
	if !rep.OK {
		t.Fatalf("%s: expected certification, got violation: %+v", mode, rep.Violations[0])
	}
	return rep
}

func mustViolate(t *testing.T, tr Trace, mode Mode, kind string) *Violation {
	t.Helper()
	rep := Check(tr, mode)
	if rep.OK {
		t.Fatalf("%s: expected a %s violation, trace certified", mode, kind)
	}
	v := rep.First()
	if v.Kind != kind {
		t.Fatalf("%s: violation kind = %s, want %s (message: %s)", mode, v.Kind, kind, v.Message)
	}
	return v
}

func TestCertifiesSimpleHistories(t *testing.T) {
	cases := []struct {
		name string
		tr   Trace
	}{
		{"empty", Trace{}},
		{"single writer single reader", Trace{
			{w(1, 10), w(1, 20)},
			{r(1, 10), r(1, 20)},
		}},
		{"initial reads", Trace{
			{r(1, 0), r(2, 0)},
			{w(3, 5)},
		}},
		{"read your writes", Trace{
			{w(1, 10), r(1, 10), w(1, 20), r(1, 20)},
		}},
		{"two observers same order", Trace{
			{w(7, 1), w(7, 2)},
			{r(7, 0), r(7, 1), r(7, 2)},
			{r(7, 1), r(7, 2), r(7, 2)},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mustCertify(t, tc.tr, ModePRAM)
			mustCertify(t, tc.tr, ModePerVariable)
		})
	}
}

// TestCertifiesNonGreedyHistory pins the case that defeats lazy frontier
// simulation (the reason this checker builds the full constraint graph):
// the only legal serialization for the reader orders B's write of x BEFORE
// A's, i.e. b1(x,2) b2(z,3) a1(x,1) r(x,1) r(z,3) r(x,1). A greedy
// replayer that applies A's write first sees the final r(x,1) contradicted
// and wrongly rejects; the constraint closure certifies.
func TestCertifiesNonGreedyHistory(t *testing.T) {
	tr := Trace{
		{w(100, 1)},            // A: a1(x,1)
		{w(100, 2), w(200, 3)}, // B: b1(x,2), b2(z,3)
		{r(100, 1), r(200, 3), r(100, 1)},
	}
	mustCertify(t, tr, ModePRAM)
	mustCertify(t, tr, ModePerVariable)
}

func TestStaleReadIsCycle(t *testing.T) {
	// One observer sees the writer's two values in inverted order.
	tr := Trace{
		{w(1, 10), w(1, 20)},
		{r(1, 20), r(1, 10)},
	}
	for _, mode := range []Mode{ModePRAM, ModePerVariable} {
		v := mustViolate(t, tr, mode, KindCycle)
		if len(v.Ops) != 2 {
			t.Fatalf("%s: counterexample cycle has %d ops, want the minimal 2: %+v", mode, len(v.Ops), v.Ops)
		}
		if len(v.Why) != len(v.Ops) {
			t.Fatalf("%s: cycle has %d ops but %d edge justifications", mode, len(v.Ops), len(v.Why))
		}
	}
}

func TestLostWriteIsStaleInitialRead(t *testing.T) {
	// Read-your-writes violation: the client's own write is lost.
	tr := Trace{{w(1, 10), r(1, 0)}}
	for _, mode := range []Mode{ModePRAM, ModePerVariable} {
		v := mustViolate(t, tr, mode, KindStaleInitialRead)
		if len(v.Ops) != 2 {
			t.Fatalf("%s: counterexample has %d ops, want 2 (write, read): %+v", mode, len(v.Ops), v.Ops)
		}
	}
	// Same anomaly observed transitively through another client's read.
	tr = Trace{
		{w(1, 10), w(2, 20)},
		{r(2, 20), r(1, 0)},
	}
	mustViolate(t, tr, ModePRAM, KindStaleInitialRead)
}

func TestProgramOrderInversionSplitsModes(t *testing.T) {
	// B observes A's second write but not its first: a PRAM (FIFO)
	// violation. Per-variable consistency is indifferent — x and y each
	// have a legal independent order — which is exactly the documented gap
	// between the frontend's total-order contract and the sharded
	// service's per-variable contract.
	tr := Trace{
		{w(1, 10), w(2, 20)},
		{r(2, 20), r(1, 0)},
	}
	mustViolate(t, tr, ModePRAM, KindStaleInitialRead)
	mustCertify(t, tr, ModePerVariable)

	// The two-value variant, same shape with no initial values involved.
	tr = Trace{
		{w(1, 11), w(1, 10), w(2, 20)},
		{r(2, 20), r(1, 11)},
	}
	mustViolate(t, tr, ModePRAM, KindCycle)
	mustCertify(t, tr, ModePerVariable)
}

func TestPhantomRead(t *testing.T) {
	tr := Trace{
		{w(1, 10)},
		{r(1, 7)}, // nobody ever wrote 7
	}
	for _, mode := range []Mode{ModePRAM, ModePerVariable} {
		mustViolate(t, tr, mode, KindPhantomRead)
	}
}

func TestForkJoinOscillation(t *testing.T) {
	// Two concurrent writers; a joiner sees the value flip back — no
	// serialization of the two writes explains 1, 2, 1.
	tr := Trace{
		{w(1, 10)},
		{w(1, 20)},
		{r(1, 10), r(1, 20), r(1, 10)},
	}
	for _, mode := range []Mode{ModePRAM, ModePerVariable} {
		v := mustViolate(t, tr, mode, KindCycle)
		if len(v.Ops) != 2 {
			t.Fatalf("%s: oscillation counterexample has %d ops, want minimal 2: %+v", mode, len(v.Ops), v.Ops)
		}
	}
}

func TestDataUniquenessPreconditions(t *testing.T) {
	dup := Trace{
		{w(1, 10)},
		{w(1, 10)},
	}
	v := mustViolate(t, dup, ModePRAM, KindDuplicateWrite)
	if len(v.Ops) != 2 {
		t.Fatalf("duplicate-write counterexample should name both writes, got %+v", v.Ops)
	}
	zero := Trace{{w(1, 0)}}
	mustViolate(t, zero, ModePerVariable, KindZeroWrite)
}

func TestFailedOpsExcluded(t *testing.T) {
	// Failed reads and unread failed writes impose nothing.
	tr := Trace{
		{w(1, 10), failedW(1, 11), failedR(1)},
		{r(1, 10)},
	}
	for _, mode := range []Mode{ModePRAM, ModePerVariable} {
		rep := mustCertify(t, tr, mode)
		if rep.DroppedFailed != 2 {
			t.Fatalf("%s: DroppedFailed = %d, want 2", mode, rep.DroppedFailed)
		}
		if rep.Resurrected != 0 {
			t.Fatalf("%s: Resurrected = %d, want 0", mode, rep.Resurrected)
		}
	}
	// A failed write that never landed must not trigger a lost-write
	// verdict on a subsequent initial read.
	tr = Trace{
		{failedW(1, 11)},
		{r(1, 0)},
	}
	mustCertify(t, tr, ModePerVariable)
}

func TestFailedWriteResurrection(t *testing.T) {
	// A stranded write whose value is later read did land: it is
	// reinstated at its program-order position…
	tr := Trace{
		{failedW(1, 11)},
		{r(1, 11)},
	}
	for _, mode := range []Mode{ModePRAM, ModePerVariable} {
		rep := mustCertify(t, tr, mode)
		if rep.Resurrected != 1 {
			t.Fatalf("%s: Resurrected = %d, want 1", mode, rep.Resurrected)
		}
	}
	// …and then carries full obligations: the writer's own later initial
	// read contradicts it.
	tr = Trace{
		{failedW(1, 11), r(1, 0)},
		{r(1, 11)},
	}
	mustViolate(t, tr, ModePerVariable, KindStaleInitialRead)
}

func TestModesFor(t *testing.T) {
	if got := ModesFor(ContractTotalOrder); len(got) != 2 {
		t.Fatalf("total-order contract must demand both modes, got %v", got)
	}
	if got := ModesFor(ContractPerVariable); len(got) != 1 || got[0] != ModePerVariable {
		t.Fatalf("per-variable contract must demand only per-variable, got %v", got)
	}
}

func TestRandomSCHistoriesCertify(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for i := 0; i < iters; i++ {
		clients := 2 + rng.Intn(4)
		ops := 20 + rng.Intn(120)
		vars := 1 + rng.Intn(12)
		tr := genSCTrace(rng, clients, ops, vars)
		for _, mode := range []Mode{ModePRAM, ModePerVariable} {
			if rep := Check(tr, mode); !rep.OK {
				t.Fatalf("iter %d (%d clients × %d ops, %d vars): SC history rejected under %s: %+v",
					i, clients, ops, vars, mode, rep.Violations[0])
			}
		}
	}
}

func TestRandomPRAMHistoriesCertifyUnderPRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for i := 0; i < iters; i++ {
		tr := genPRAMTrace(rng, 2+rng.Intn(2), 1+rng.Intn(3), 15+rng.Intn(60), 1+rng.Intn(8))
		if rep := Check(tr, ModePRAM); !rep.OK {
			t.Fatalf("iter %d: PRAM-consistent history rejected: %+v", i, rep.Violations[0])
		}
	}
}

func TestRecorderMintsUniqueValues(t *testing.T) {
	rec := NewRecorder()
	rr := rec.Run("cell", ContractTotalOrder, 3)
	seen := map[uint64]bool{}
	for c := 0; c < 3; c++ {
		cr := rr.Client(c)
		for i := 0; i < 100; i++ {
			val := cr.WriteValue()
			if val == 0 || seen[val] {
				t.Fatalf("client %d minted duplicate or zero value %d", c, val)
			}
			seen[val] = true
			cr.Record(true, uint64(i%5), val, false)
			cr.Record(false, uint64(i%5), val, false)
		}
	}
	ts := rec.TraceSet()
	if len(ts.Runs) != 1 || len(ts.Runs[0].Clients) != 3 {
		t.Fatalf("trace set shape: %d runs", len(ts.Runs))
	}
	if got := rec.Ops(); got != 600 {
		t.Fatalf("recorded ops = %d, want 600", got)
	}
}

func TestReportOpsCounting(t *testing.T) {
	tr := Trace{
		{w(1, 10), failedR(2)},
		{r(1, 10)},
	}
	rep := Check(tr, ModePerVariable)
	if rep.OpsChecked != 2 || rep.DroppedFailed != 1 {
		t.Fatalf("OpsChecked = %d DroppedFailed = %d, want 2 and 1", rep.OpsChecked, rep.DroppedFailed)
	}
}
