package consistency

import (
	"fmt"
	"sort"
)

// Mode selects which consistency model Check certifies.
type Mode int

const (
	// ModePRAM checks PRAM (FIFO) consistency with read-your-writes, per
	// Wei et al.: for every client p there must exist a serialization of
	// all clients' writes plus p's reads that respects every client's
	// program order and in which each of p's reads returns the latest
	// preceding write to its variable (or the initial 0 if none precedes).
	ModePRAM Mode = iota
	// ModePerVariable checks per-variable linearizability without
	// real-time constraints (per-variable sequential consistency): for
	// every variable there must exist one total order of all operations on
	// it, shared by all clients, respecting program order, in which each
	// read returns the latest preceding write. This is the contract
	// internal/shard documents.
	ModePerVariable
)

func (m Mode) String() string {
	switch m {
	case ModePRAM:
		return "pram"
	case ModePerVariable:
		return "per-variable"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ModesFor returns the modes a run's recorded contract obliges to certify.
func ModesFor(c Contract) []Mode {
	if c == ContractPerVariable {
		return []Mode{ModePerVariable}
	}
	return []Mode{ModePRAM, ModePerVariable}
}

// Violation kinds.
const (
	// KindCycle: the constraint graph of some view has a cycle — no legal
	// serialization exists. Covers stale reads, value oscillation,
	// program-order inversions and fork-join anomalies.
	KindCycle = "cycle"
	// KindStaleInitialRead: a read returned the initial 0 although a write
	// to the same variable was provably visible before it (lost write /
	// read-your-writes violation).
	KindStaleInitialRead = "stale-initial-read"
	// KindPhantomRead: a read returned a value no write (not even a failed
	// one) ever stored — an uncommitted or corrupted value.
	KindPhantomRead = "phantom-read"
	// KindDuplicateWrite: two writes stored the same value to the same
	// variable, breaking the data-uniqueness precondition the checker
	// needs to attribute reads to writes.
	KindDuplicateWrite = "duplicate-write-value"
	// KindZeroWrite: a write stored 0, colliding with the initial value
	// and breaking data uniqueness the same way.
	KindZeroWrite = "zero-write-value"
)

// OpRef pins an operation to its position in the trace.
type OpRef struct {
	Client int `json:"client"`
	Index  int `json:"index"`
	Op     Op  `json:"op"`
}

func (r OpRef) String() string {
	return fmt.Sprintf("client %d op %d: %s", r.Client, r.Index, r.Op)
}

// Violation is one refutation, with a minimal counterexample: Ops lists the
// operations of the forcing chain (for KindCycle the chain is circular) and
// Why[i] justifies the ordering constraint from Ops[i] to Ops[i+1] (for
// cycles, Why[len-1] closes the loop back to Ops[0]).
type Violation struct {
	Kind    string   `json:"kind"`
	Mode    string   `json:"mode,omitempty"`
	View    string   `json:"view,omitempty"`
	Message string   `json:"message"`
	Ops     []OpRef  `json:"ops,omitempty"`
	Why     []string `json:"why,omitempty"`
}

// Report is the verdict of one Check invocation.
type Report struct {
	Mode          string      `json:"mode"`
	OK            bool        `json:"ok"`
	OpsChecked    int         `json:"ops_checked"`
	DroppedFailed int         `json:"dropped_failed"`
	Resurrected   int         `json:"resurrected"`
	Violations    []Violation `json:"violations,omitempty"`
}

// First returns the first violation, or nil when the trace certified.
func (r *Report) First() *Violation {
	if len(r.Violations) == 0 {
		return nil
	}
	return &r.Violations[0]
}

// Check decides whether the trace is consistent under the given mode. A
// certifying report (OK=true) means a witnessing serialization exists; a
// refuting report carries at least one Violation with a minimal
// counterexample. Failed operations are excluded: failed reads always,
// failed writes unless a successful read returned their value (a stranded
// write that partially landed and became visible is reinstated and must
// then order like any other write).
func Check(tr Trace, mode Mode) *Report {
	return check(tr, mode, checkOpts{})
}

// checkOpts tunes the internal checker. noInference disables the two
// closure rules, leaving only program-order and read-from edges;
// noPreconditions suppresses the phantom/duplicate/zero-write verdicts.
// Together they make a deliberately broken checker that certifies almost
// anything — kept so the mutation suite can prove it runs red against a
// lobotomized implementation (i.e. the suite's assertions have teeth).
type checkOpts struct {
	noInference     bool
	noPreconditions bool
	maxViolations   int
}

func check(tr Trace, mode Mode, opts checkOpts) *Report {
	if opts.maxViolations <= 0 {
		opts.maxViolations = 8
	}
	cl := preprocess(tr)
	rep := &Report{
		Mode:          mode.String(),
		OpsChecked:    cl.kept,
		DroppedFailed: cl.dropped,
		Resurrected:   cl.resurrected,
	}
	if !opts.noPreconditions {
		rep.Violations = append(rep.Violations, cl.pre...)
	}
	if len(rep.Violations) < opts.maxViolations {
		for _, vw := range buildViews(cl, mode) {
			g := newGraph(vw, cl)
			if v := g.run(opts); v != nil {
				v.Mode = mode.String()
				v.View = vw.name
				rep.Violations = append(rep.Violations, *v)
				if len(rep.Violations) >= opts.maxViolations {
					break
				}
			}
		}
	}
	rep.OK = len(rep.Violations) == 0
	return rep
}

// --- preprocessing -------------------------------------------------------

type opRef struct{ client, index int }

// cop is a checkable (kept) operation with its original stream position.
type cop struct {
	op    Op
	index int
}

type cleaned struct {
	clients     [][]cop
	writerOf    map[[2]uint64]opRef // (var, value) -> its unique writer
	pre         []Violation         // precondition violations (phantom, duplicates)
	kept        int
	dropped     int
	resurrected int
}

func preprocess(tr Trace) *cleaned {
	cl := &cleaned{
		clients:  make([][]cop, len(tr)),
		writerOf: make(map[[2]uint64]opRef),
	}
	drop := make(map[opRef]bool)
	ref := func(r opRef) OpRef { return OpRef{Client: r.client, Index: r.index, Op: tr[r.client][r.index]} }

	// Pass 1: index every write (failed included — a stranded write's value
	// may surface later) and enforce data uniqueness.
	for c, ops := range tr {
		for i, op := range ops {
			if !op.Write {
				continue
			}
			r := opRef{c, i}
			if op.Val == 0 {
				cl.pre = append(cl.pre, Violation{
					Kind:    KindZeroWrite,
					Message: "write stores 0, colliding with the initial value; data uniqueness broken",
					Ops:     []OpRef{ref(r)},
				})
				drop[r] = true
				continue
			}
			key := [2]uint64{op.Var, op.Val}
			if prev, ok := cl.writerOf[key]; ok {
				cl.pre = append(cl.pre, Violation{
					Kind:    KindDuplicateWrite,
					Message: fmt.Sprintf("two writes store value %d to variable %d; data uniqueness broken", op.Val, op.Var),
					Ops:     []OpRef{ref(prev), ref(r)},
				})
				drop[r] = true
				continue
			}
			cl.writerOf[key] = r
		}
	}

	// Pass 2: attribute successful reads. A read of a failed write's value
	// resurrects that write; a read of a value nobody wrote is a phantom.
	resurrect := make(map[opRef]bool)
	for c, ops := range tr {
		for i, op := range ops {
			if op.Write || op.Failed || op.Val == 0 {
				continue
			}
			w, ok := cl.writerOf[[2]uint64{op.Var, op.Val}]
			if !ok {
				cl.pre = append(cl.pre, Violation{
					Kind:    KindPhantomRead,
					Message: fmt.Sprintf("read of variable %d returned %d, a value no write ever stored", op.Var, op.Val),
					Ops:     []OpRef{{Client: c, Index: i, Op: op}},
				})
				drop[opRef{c, i}] = true
				continue
			}
			if tr[w.client][w.index].Failed {
				resurrect[w] = true
			}
		}
	}

	// Pass 3: build the kept streams.
	for c, ops := range tr {
		for i, op := range ops {
			r := opRef{c, i}
			if drop[r] {
				continue
			}
			if op.Failed {
				if op.Write && resurrect[r] {
					cl.resurrected++
				} else {
					cl.dropped++
					continue
				}
			}
			cl.clients[c] = append(cl.clients[c], cop{op: op, index: i})
			cl.kept++
		}
	}
	return cl
}

// --- view construction ---------------------------------------------------

// view is one subproblem: a named subset of the kept operations whose
// constraint graph must be acyclic. viewNode i corresponds to
// cl.clients[nodes[i].client][...] with original index nodes[i].index.
type view struct {
	name  string
	nodes []OpRef
	// chains[c] lists this view's node ids belonging to client c, in
	// program order (the base edges).
	chains [][]int32
}

func buildViews(cl *cleaned, mode Mode) []view {
	switch mode {
	case ModePRAM:
		// One view per client that has at least one read: all clients'
		// writes plus that client's reads. A read-free view has only
		// program-order chains over writes — trivially acyclic — so it is
		// skipped.
		var out []view
		for p := range cl.clients {
			hasRead := false
			for _, co := range cl.clients[p] {
				if !co.op.Write {
					hasRead = true
					break
				}
			}
			if !hasRead {
				continue
			}
			vw := view{name: fmt.Sprintf("client %d", p), chains: make([][]int32, len(cl.clients))}
			for c, ops := range cl.clients {
				for _, co := range ops {
					if !co.op.Write && c != p {
						continue
					}
					vw.chains[c] = append(vw.chains[c], int32(len(vw.nodes)))
					vw.nodes = append(vw.nodes, OpRef{Client: c, Index: co.index, Op: co.op})
				}
			}
			out = append(out, vw)
		}
		return out
	case ModePerVariable:
		// One view per variable: all operations on it, from every client.
		perVar := make(map[uint64]*view)
		var vars []uint64
		for c, ops := range cl.clients {
			for _, co := range ops {
				vw := perVar[co.op.Var]
				if vw == nil {
					vw = &view{name: fmt.Sprintf("variable %d", co.op.Var), chains: make([][]int32, len(cl.clients))}
					perVar[co.op.Var] = vw
					vars = append(vars, co.op.Var)
				}
				vw.chains[c] = append(vw.chains[c], int32(len(vw.nodes)))
				vw.nodes = append(vw.nodes, OpRef{Client: c, Index: co.index, Op: co.op})
			}
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
		out := make([]view, 0, len(vars))
		for _, v := range vars {
			out = append(out, *perVar[v])
		}
		return out
	}
	return nil
}

// --- the constraint-graph engine ----------------------------------------

type edgeWhy uint8

const (
	whyPO edgeWhy = iota
	whyReadFrom
	whyRule1 // w' visible before a read of w, so w' precedes w
	whyRule2 // r reads w and w precedes w'', so r precedes w''
)

type edge struct {
	to  int32
	why edgeWhy
	via int32 // the inducing read for whyRule1/whyRule2, else -1
}

// graph runs the closure check on one view. Node ids are view-local.
type graph struct {
	vw    view
	out   [][]edge
	seen  map[int64]struct{} // edge dedup: from<<32 | to
	dict  []int32            // per node: local id of the dictating write; -1 for non-reads and initial-value reads
	wvar  map[uint64][]int32 // var -> local write ids, in node order
	vars  []uint64           // sorted keys of wvar
	order []int32            // topo order scratch
	indeg []int32
	reach []uint64 // nodes × words reachability scratch, reused across groups
}

func newGraph(vw view, cl *cleaned) *graph {
	n := len(vw.nodes)
	g := &graph{
		vw:    vw,
		out:   make([][]edge, n),
		seen:  make(map[int64]struct{}, 2*n),
		dict:  make([]int32, n),
		wvar:  make(map[uint64][]int32),
		indeg: make([]int32, n),
	}
	// Index writes and locate each read's dictating write (data uniqueness
	// and phantom-freedom are guaranteed by preprocess).
	local := make(map[opRef]int32, n)
	for i, nd := range vw.nodes {
		g.dict[i] = -1
		local[opRef{nd.Client, nd.Index}] = int32(i)
		if nd.Op.Write {
			if _, ok := g.wvar[nd.Op.Var]; !ok {
				g.vars = append(g.vars, nd.Op.Var)
			}
			g.wvar[nd.Op.Var] = append(g.wvar[nd.Op.Var], int32(i))
		}
	}
	sort.Slice(g.vars, func(i, j int) bool { return g.vars[i] < g.vars[j] })
	// Base edges: program order…
	for _, chain := range vw.chains {
		for k := 1; k < len(chain); k++ {
			g.addEdge(chain[k-1], chain[k], whyPO, -1)
		}
	}
	// …and read-from.
	for i, nd := range vw.nodes {
		if nd.Op.Write || nd.Op.Val == 0 {
			continue
		}
		w := cl.writerOf[[2]uint64{nd.Op.Var, nd.Op.Val}]
		if wl, ok := local[w]; ok {
			g.dict[i] = wl
			g.addEdge(wl, int32(i), whyReadFrom, -1)
		}
		// A dictating write outside the view cannot happen: PRAM views hold
		// all writes, per-variable views hold all ops on the variable.
	}
	return g
}

func (g *graph) addEdge(from, to int32, why edgeWhy, via int32) bool {
	if from == to {
		return false
	}
	key := int64(from)<<32 | int64(uint32(to))
	if _, ok := g.seen[key]; ok {
		return false
	}
	g.seen[key] = struct{}{}
	g.out[from] = append(g.out[from], edge{to: to, why: why, via: via})
	return true
}

// run iterates topo-sort + inference to fixpoint. Returns nil if the view
// certifies, else a minimal counterexample.
func (g *graph) run(opts checkOpts) *Violation {
	for {
		if !g.topo() {
			return g.cycleViolation()
		}
		if opts.noInference {
			return nil
		}
		added, v := g.infer()
		if v != nil {
			return v
		}
		if !added {
			return nil
		}
	}
}

// topo runs Kahn's algorithm; false means a cycle remains (indeg then marks
// the residual subgraph: nodes with indeg > 0 after the peel).
func (g *graph) topo() bool {
	n := len(g.vw.nodes)
	for i := range g.indeg {
		g.indeg[i] = 0
	}
	for _, es := range g.out {
		for _, e := range es {
			g.indeg[e.to]++
		}
	}
	g.order = g.order[:0]
	for i := 0; i < n; i++ {
		if g.indeg[i] == 0 {
			g.order = append(g.order, int32(i))
		}
	}
	for k := 0; k < len(g.order); k++ {
		for _, e := range g.out[g.order[k]] {
			if g.indeg[e.to]--; g.indeg[e.to] == 0 {
				g.order = append(g.order, e.to)
			}
		}
	}
	return len(g.order) == n
}

// infer applies the two closure rules using the topo order, in groups of
// variables whose writes share one bitset layout, so the reachability DP
// buffer stays nodes × ≤64 words however large the trace is. Returns
// whether any edge was added, or an initial-value violation.
func (g *graph) infer() (bool, *Violation) {
	const groupBits = 4096
	n := len(g.vw.nodes)
	added := false
	for lo := 0; lo < len(g.vars); {
		// Grow the group while it fits (always at least one variable).
		hi, bits := lo, 0
		for hi < len(g.vars) && (hi == lo || bits+len(g.wvar[g.vars[hi]]) <= groupBits) {
			bits += len(g.wvar[g.vars[hi]])
			hi++
		}
		words := (bits + 63) / 64
		if need := n * words; cap(g.reach) < need {
			g.reach = make([]uint64, need)
		} else {
			g.reach = g.reach[:need]
			for i := range g.reach {
				g.reach[i] = 0
			}
		}
		// Bit assignment for this group's writes.
		bitOf := make(map[int32]int, bits)
		writeOfBit := make([]int32, 0, bits)
		groupHas := make(map[uint64]bool, hi-lo)
		for _, x := range g.vars[lo:hi] {
			groupHas[x] = true
			for _, w := range g.wvar[x] {
				bitOf[w] = len(writeOfBit)
				writeOfBit = append(writeOfBit, w)
			}
		}
		// Forward DP: after the loop, reach[m] = {group writes w : w ⇒ m}.
		for _, nd := range g.order {
			row := g.reach[int(nd)*words : int(nd)*words+words]
			b, isW := bitOf[nd]
			for _, e := range g.out[nd] {
				dst := g.reach[int(e.to)*words : int(e.to)*words+words]
				for i, w := range row {
					dst[i] |= w
				}
				if isW {
					dst[b/64] |= 1 << (b % 64)
				}
			}
		}
		// Rules, for every read on a group variable.
		for r := 0; r < n; r++ {
			nd := g.vw.nodes[r]
			if nd.Op.Write || !groupHas[nd.Op.Var] {
				continue
			}
			x := nd.Op.Var
			w := g.dict[r]
			rowR := g.reach[r*words : r*words+words]
			if w < 0 {
				// Initial-value read: any same-variable write reaching it
				// refutes the trace.
				for _, wl := range g.wvar[x] {
					b := bitOf[wl]
					if rowR[b/64]&(1<<(b%64)) != 0 {
						return added, g.initialReadViolation(wl, int32(r))
					}
				}
				continue
			}
			// Rule 1: a same-variable write w' visible before r must
			// precede the dictating write w (else r would have returned
			// w'). Skip writes already known to precede w.
			rowW := g.reach[int(w)*words : int(w)*words+words]
			for _, wl := range g.wvar[x] {
				if wl == w {
					continue
				}
				b := bitOf[wl]
				if rowR[b/64]&(1<<(b%64)) == 0 || rowW[b/64]&(1<<(b%64)) != 0 {
					continue
				}
				if g.addEdge(wl, w, whyRule1, int32(r)) {
					added = true
				}
			}
			// Rule 2: r precedes every same-variable write that the
			// dictating write precedes (else that write would shadow w).
			wb := bitOf[w]
			for _, w2 := range g.wvar[x] {
				if w2 == w {
					continue
				}
				row2 := g.reach[int(w2)*words : int(w2)*words+words]
				if row2[wb/64]&(1<<(wb%64)) == 0 {
					continue
				}
				if g.addEdge(int32(r), w2, whyRule2, int32(r)) {
					added = true
				}
			}
		}
		lo = hi
	}
	return added, nil
}

// --- counterexample extraction ------------------------------------------

func (g *graph) whyString(e edge) string {
	switch e.why {
	case whyPO:
		return "program order"
	case whyReadFrom:
		return "read-from: the read returned this write's value"
	case whyRule1:
		via := g.vw.nodes[e.via]
		return fmt.Sprintf("inferred: already visible when client %d's read op %d returned the other write's value", via.Client, via.Index)
	case whyRule2:
		return "inferred: the read's dictating write precedes this write, so the read must too"
	}
	return "?"
}

// edgeBetween returns the recorded edge from a to b (it exists by
// construction when called).
func (g *graph) edgeBetween(a, b int32) edge {
	for _, e := range g.out[a] {
		if e.to == b {
			return e
		}
	}
	return edge{to: b, via: -1}
}

// bfsPath returns the shortest node path from src to dst over the current
// edges (nil if unreachable). restrict, when non-nil, confines the search
// to nodes with restrict[node] true.
func (g *graph) bfsPath(src, dst int32, restrict []bool) []int32 {
	n := len(g.vw.nodes)
	prev := make([]int32, n)
	for i := range prev {
		prev[i] = -2
	}
	prev[src] = -1
	queue := []int32{src}
	for len(queue) > 0 {
		nd := queue[0]
		queue = queue[1:]
		for _, e := range g.out[nd] {
			if prev[e.to] != -2 || (restrict != nil && !restrict[e.to]) {
				continue
			}
			prev[e.to] = nd
			if e.to == dst {
				var path []int32
				for at := dst; at != -1; at = prev[at] {
					path = append(path, at)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, e.to)
		}
	}
	return nil
}

// cycleViolation extracts a shortest cycle from the residual subgraph left
// by a failed topo (nodes with indeg > 0). Minimality: BFS from each
// residual start finds the shortest cycle through it; the best over capped
// starts is reported.
func (g *graph) cycleViolation() *Violation {
	residual := make([]bool, len(g.vw.nodes))
	var starts []int32
	for i, d := range g.indeg {
		if d > 0 {
			residual[i] = true
			starts = append(starts, int32(i))
		}
	}
	const maxStarts = 128
	if len(starts) > maxStarts {
		starts = starts[:maxStarts]
	}
	var best []int32
	for _, s := range starts {
		// Shortest s → s cycle: BFS from each successor of s back to s.
		for _, e := range g.out[s] {
			if !residual[e.to] {
				continue
			}
			var path []int32
			if e.to == s {
				path = []int32{s}
			} else if p := g.bfsPath(e.to, s, residual); p != nil {
				path = append([]int32{s}, p[:len(p)-1]...)
			}
			if path != nil && (best == nil || len(path) < len(best)) {
				best = path
			}
		}
	}
	v := &Violation{Kind: KindCycle}
	if best == nil {
		v.Message = "constraint graph is cyclic (no legal serialization exists)"
		return v
	}
	for i, nd := range best {
		v.Ops = append(v.Ops, g.vw.nodes[nd])
		v.Why = append(v.Why, g.whyString(g.edgeBetween(nd, best[(i+1)%len(best)])))
	}
	v.Message = fmt.Sprintf("ordering cycle over %d operations: each must precede the next, and the last must precede the first", len(best))
	return v
}

// initialReadViolation reports a read of the initial value that a
// same-variable write provably preceded, with the shortest forcing chain
// from the write to the read.
func (g *graph) initialReadViolation(w, r int32) *Violation {
	v := &Violation{Kind: KindStaleInitialRead}
	path := g.bfsPath(w, r, nil)
	if path == nil {
		path = []int32{w, r}
	}
	for i, nd := range path {
		v.Ops = append(v.Ops, g.vw.nodes[nd])
		if i+1 < len(path) {
			v.Why = append(v.Why, g.whyString(g.edgeBetween(nd, path[i+1])))
		}
	}
	wn, rn := g.vw.nodes[w], g.vw.nodes[r]
	v.Message = fmt.Sprintf("read of variable %d returned the initial 0, but write(var=%d, val=%d) was already visible (lost write / read-your-writes violation)",
		rn.Op.Var, wn.Op.Var, wn.Op.Val)
	return v
}
