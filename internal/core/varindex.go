package core

import (
	"fmt"
	"sort"

	"detshmem/internal/pgl"
)

// Indexer is bijection 1 of Section 4: an ordering v_0 … v_{M-1} of the
// variable cosets of PGL₂(qⁿ)/H₀ such that the representative matrix A_i of
// the i-th variable is efficiently computable from i.
type Indexer interface {
	// M returns the number of variables.
	M() uint64
	// Mat returns a representative A_i of the coset of variable i.
	Mat(i uint64) pgl.Mat
}

// Inverter is the optional inverse direction: mapping any representative of
// a variable coset back to its variable index. Both indexers support it (the
// explicit one by algebraically classifying which of S₁–S₄ contains the
// coset's representative); the access protocol itself does not need it, but
// graph-structured adversarial workloads do.
type Inverter interface {
	// Index returns the variable index of the coset containing m.
	Index(m pgl.Mat) (uint64, bool)
}

// NewIndexer returns the best indexer for the scheme: the explicit Theorem 8
// bijection when it applies (q = 2, n odd), otherwise the compact
// minimum-module bijection — whose O(q)-per-edge build and 8-byte-per-
// variable table open the q > 2 parameter range the enumerated indexer's
// O(q³)-per-edge canonicalization priced out.
func (s *Scheme) NewIndexer() (Indexer, error) {
	if s.Q == 2 && s.Deg%2 == 1 {
		return NewExplicitIndexer(s)
	}
	return NewCompactIndexer(s), nil
}

// EnumeratedIndexer materializes the variable↔coset bijection by walking all
// N·q^{n-1} edges of G and deduplicating coset keys. It needs O(M) memory and
// is the generic fallback for parameters not covered by the paper's explicit
// construction (q > 2 or n even, which PP93 defer to an extended version).
type EnumeratedIndexer struct {
	s    *Scheme
	mats []pgl.Mat          // canonical coset key of variable i
	idx  map[pgl.Mat]uint64 // inverse map
}

// NewEnumeratedIndexer builds the bijection; cost O(M·q·poly(q)).
func NewEnumeratedIndexer(s *Scheme) *EnumeratedIndexer {
	seen := make(map[pgl.Mat]uint64, s.NumVariables)
	for j := uint64(0); j < s.NumModules; j++ {
		for k := uint32(0); k < s.ModuleSize; k++ {
			key := s.VarKey(s.ModuleVarMat(j, k))
			if _, ok := seen[key]; !ok {
				seen[key] = 0
			}
		}
	}
	mats := make([]pgl.Mat, 0, len(seen))
	for k := range seen {
		mats = append(mats, k)
	}
	sort.Slice(mats, func(a, b int) bool { return matLess(mats[a], mats[b]) })
	for i, m := range mats {
		seen[m] = uint64(i)
	}
	return &EnumeratedIndexer{s: s, mats: mats, idx: seen}
}

// M returns the number of variables.
func (e *EnumeratedIndexer) M() uint64 { return uint64(len(e.mats)) }

// Mat returns the canonical representative of variable i.
func (e *EnumeratedIndexer) Mat(i uint64) pgl.Mat { return e.mats[i] }

// Index returns the variable index of the coset containing m (any
// representative is accepted).
func (e *EnumeratedIndexer) Index(m pgl.Mat) (uint64, bool) {
	i, ok := e.idx[e.s.VarKey(m)]
	return i, ok
}

// Bytes reports the resident size of the key array plus a map-entry estimate
// (key + value + bucket overhead), for resolver-strategy memory accounting.
func (e *EnumeratedIndexer) Bytes() uint64 {
	return uint64(len(e.mats)) * (16 + 16 + 8 + 16)
}

func matLess(x, y pgl.Mat) bool {
	if x.A != y.A {
		return x.A < y.A
	}
	if x.B != y.B {
		return x.B < y.B
	}
	if x.C != y.C {
		return x.C < y.C
	}
	return x.D < y.D
}

var _ Indexer = (*EnumeratedIndexer)(nil)
var _ Inverter = (*EnumeratedIndexer)(nil)

var _ Indexer = (*ExplicitIndexer)(nil)

// errNotApplicable is returned when the Theorem 8 construction's parameter
// restrictions are violated.
func errNotApplicable(q uint32, n int) error {
	return fmt.Errorf("core: explicit indexing needs q=2 and odd n, got q=%d n=%d", q, n)
}
