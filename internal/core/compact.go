package core

import (
	"fmt"
	"sort"

	"detshmem/internal/pgl"
)

// CompactIndexer is the generic variable-index bijection for parameters the
// explicit Theorem 8 construction does not cover (q > 2 or n even). Where
// EnumeratedIndexer canonicalizes every edge's variable by an O(q³)
// minimum-scan over H₀ and stores a 16-byte key plus a map entry per
// variable, the compact indexer exploits Lemma 1 directly: the q+1 copies of
// a variable live in pairwise-distinct modules, so the minimum module index
// over a variable's copies selects exactly one edge (j, k) per variable. The
// indexer is just the sorted array of packed edge ids j·q^{n-1} + k — eight
// bytes per variable — built with O(q) constant-cost H_{n-1} coset keys per
// edge via the batched resolution kernels. This is what makes q = 4 and
// q = 8 schemes indexable at extension degrees where the enumerated build is
// prohibitive (q=8 n=3) or simply impossible (q=4 n=5: 89.5M edges).
//
// Mat decodes in O(1) (one specialized module-representative product);
// Index recomputes the minimum module, inverts the offset bijection and
// binary-searches the edge array, O(q + log M).
type CompactIndexer struct {
	s     *Scheme
	msz   uint64   // ModuleSize, hoisted for edge packing
	edges []uint64 // sorted packed edge ids j·ModuleSize+k, one per variable
}

// NewCompactIndexer builds the bijection by walking all N·q^{n-1} edges in
// (module, offset) order and keeping each edge whose module is the minimum
// over its variable's copy set; the packed ids arrive already sorted.
func NewCompactIndexer(s *Scheme) *CompactIndexer {
	msz := uint64(s.ModuleSize)
	edges := make([]uint64, 0, s.NumVariables)
	const block = 256
	mats := make([]pgl.Mat, 0, block)
	ids := make([]uint64, 0, block)
	mods := make([]uint64, block*s.Copies)
	flush := func() {
		if len(mats) == 0 {
			return
		}
		s.ResolveModules(mats, s.Copies, mods[:len(mats)*s.Copies])
		for i := range mats {
			row := mods[i*s.Copies : (i+1)*s.Copies]
			min := row[0] // copy 0's module is the edge's own module j
			for _, m := range row[1:] {
				if m < min {
					min = m
				}
			}
			if min == ids[i]/msz {
				edges = append(edges, ids[i])
			}
		}
		mats, ids = mats[:0], ids[:0]
	}
	for j := uint64(0); j < s.NumModules; j++ {
		for k := uint32(0); k < s.ModuleSize; k++ {
			mats = append(mats, s.ModuleVarMat(j, k))
			ids = append(ids, j*msz+uint64(k))
			if len(mats) == block {
				flush()
			}
		}
	}
	flush()
	if uint64(len(edges)) != s.NumVariables {
		// Lemmas 1–2 make the minimum-module edge unique per variable; a
		// mismatch means the scheme construction itself is broken.
		panic(fmt.Sprintf("core: compact indexer kept %d edges for %d variables", len(edges), s.NumVariables))
	}
	return &CompactIndexer{s: s, msz: msz, edges: edges}
}

// M returns the number of variables.
func (x *CompactIndexer) M() uint64 { return uint64(len(x.edges)) }

// Mat returns the representative C_k^j = B_j·(1 p_k; 0 1) of variable i's
// coset, decoding the packed edge id.
func (x *CompactIndexer) Mat(i uint64) pgl.Mat {
	e := x.edges[i]
	return x.s.ModuleVarMat(e/x.msz, uint32(e%x.msz))
}

// Index returns the variable index of the coset containing m (any
// representative is accepted): it re-derives the variable's minimum module —
// the copy set is a property of the coset, so any representative yields the
// same set — and binary-searches the canonical edge.
func (x *CompactIndexer) Index(m pgl.Mat) (uint64, bool) {
	s := x.s
	best := s.ModuleIndex(m)
	for c := 1; c < s.Copies; c++ {
		if j := s.ModuleIndex(s.CopyModuleMat(m, c)); j < best {
			best = j
		}
	}
	off, err := s.Offset(m, best)
	if err != nil {
		return 0, false
	}
	e := best*x.msz + uint64(off)
	i := sort.Search(len(x.edges), func(i int) bool { return x.edges[i] >= e })
	if i < len(x.edges) && x.edges[i] == e {
		return uint64(i), true
	}
	return 0, false
}

// Bytes reports the resident size of the indexer's variable table (the edge
// array), for resolver-strategy memory accounting.
func (x *CompactIndexer) Bytes() uint64 { return uint64(len(x.edges)) * 8 }

var _ Indexer = (*CompactIndexer)(nil)
var _ Inverter = (*CompactIndexer)(nil)
