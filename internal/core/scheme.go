// Package core implements the Pietracaprina–Preparata deterministic
// memory-organization scheme (SPAA'93): the bipartite graph G(V, U; E) whose
// left vertices are the M = |PGL₂(qⁿ)/H₀| variables, whose right vertices are
// the N = |PGL₂(qⁿ)/H_{n-1}| memory modules, and whose edges are the
// non-empty coset intersections. Each variable has exactly q+1 copies
// (Lemma 1), each module stores exactly q^{n-1} copies (Lemma 2), any two
// variables share at most one module (Theorem 2), and any set S of variables
// expands to at least |S|^{2/3}·q/2^{1/3} modules (Theorem 4).
//
// The package also implements the Section 4 addressing machinery: the
// module-index bijection f(s,t), the in-module offset of a copy (Lemma 4),
// and the explicit variable-index bijection S₁–S₄ (Theorem 8, q = 2 and n
// odd), so that a processor maps a variable index to the physical addresses
// of its q+1 copies in O(log N) field operations with O(1) state.
package core

import (
	"fmt"

	"detshmem/internal/gf"
	"detshmem/internal/pgl"
)

// Scheme describes one instance of the memory organization, fixed by the
// base-field size q = 2^m and the extension degree n >= 3.
type Scheme struct {
	F *gf.Ext    // F_{q^n}
	G *pgl.Group // PGL₂(q^n)

	Q        uint32 // base-field order q (a power of 2)
	Deg      int    // extension degree n
	Copies   int    // copies per variable: q+1
	Majority int    // copies a read/write must touch: q/2+1

	NumModules   uint64 // N  = (q^n+1)(q^n−1)/(q−1)
	NumVariables uint64 // M  = (q^n+1)q^n(q^n−1)/((q+1)q(q−1))
	ModuleSize   uint32 // q^{n-1} copies per module
}

// New constructs the scheme for q = 2^m, extension degree n. It builds the
// field tables and the PGL₂ machinery; cost is O(q^n) time and space.
func New(m, n int) (*Scheme, error) {
	if n < 3 {
		return nil, fmt.Errorf("core: extension degree n=%d must be >= 3", n)
	}
	f, err := gf.NewExt(m, n)
	if err != nil {
		return nil, err
	}
	k := uint64(f.Order) // q^n
	q := uint64(f.Q)
	s := &Scheme{
		F:        f,
		G:        pgl.New(f),
		Q:        f.Q,
		Deg:      n,
		Copies:   int(f.Q) + 1,
		Majority: int(f.Q)/2 + 1,

		NumModules:   (k + 1) * (k - 1) / (q - 1),
		NumVariables: (k + 1) * k * (k - 1) / ((q + 1) * q * (q - 1)),
		ModuleSize:   f.Order / f.Q,
	}
	return s, nil
}

// CopyModuleMat returns a matrix representing the H_{n-1} coset (module)
// holding copy c of the variable with representative A. Per Lemma 1 the
// copies of A·H₀ live in
//
//	{ A·H_{n-1} } ∪ { A·(a 1; 1 0)·H_{n-1} : a ∈ F_q },
//
// ordered here as copy 0 = A·H_{n-1} and copy 1+a = A·(a 1; 1 0)·H_{n-1}.
func (s *Scheme) CopyModuleMat(a pgl.Mat, c int) pgl.Mat {
	if c == 0 {
		return a
	}
	return s.G.Mul(a, s.G.Involution(uint32(c-1)))
}

// ModuleIndex returns the Section 4 index f(s,t) = s·(q^n+1) + t + 1 of the
// module whose coset contains m.
func (s *Scheme) ModuleIndex(m pgl.Mat) uint64 {
	cs, ct := s.G.CosetKeyHn1(m)
	return uint64(cs)*(uint64(s.F.Order)+1) + uint64(ct) + 1
}

// ModuleMat returns the canonical representative B_j of module j
// (the inverse of ModuleIndex on representatives): B_{f(s,t)} is
// (γ^s 0; 0 1) when t = −1 and (α_t γ^s; 1 0) otherwise.
func (s *Scheme) ModuleMat(j uint64) pgl.Mat {
	k := uint64(s.F.Order)
	cs := uint32(j / (k + 1))
	t := int64(j%(k+1)) - 1
	gs := s.F.Exp(int(cs))
	if t == -1 {
		return s.G.MustMake(gs, 0, 0, 1)
	}
	return s.G.MustMake(uint32(t), gs, 1, 0)
}

// VarModules appends to dst the q+1 module indices holding the copies of the
// variable with representative a, in copy order, and returns the slice.
func (s *Scheme) VarModules(dst []uint64, a pgl.Mat) []uint64 {
	for c := 0; c < s.Copies; c++ {
		dst = append(dst, s.ModuleIndex(s.CopyModuleMat(a, c)))
	}
	return dst
}

// ModuleVarMat returns a representative of the variable whose copy sits at
// offset k of module j: C_k^j = B_j·(1 p_k; 0 1) (Section 4, bijection 3).
// The translation only shears the right column — B·(1 p; 0 1) =
// (A, A·p+B; C, C·p+D) — so the general product's eight multiplies reduce
// to two.
func (s *Scheme) ModuleVarMat(j uint64, k uint32) pgl.Mat {
	b := s.ModuleMat(j)
	p := s.F.PElem(k)
	return s.G.Canon(b.A, s.F.Add(s.F.Mul(b.A, p), b.B), b.C, s.F.Add(s.F.Mul(b.C, p), b.D))
}

// Offset computes the in-module offset of the copy of variable a stored in
// module j, inverting bijection 3: it finds the unique p ∈ P_γ with
// B_j^{-1}·a ∈ (1 p; 0 1)·H₀ and returns its index. The offset is defined
// with respect to the canonical module representative B_j (any representative
// of a's coset gives the same answer, tests verify both facts). It returns an
// error if a's coset has no copy in module j (not an edge of G).
func (s *Scheme) Offset(a pgl.Mat, j uint64) (uint32, error) {
	f := s.F
	y := s.G.Mul(s.G.Inv(s.ModuleMat(j)), a)
	// (1 p; 0 1)^{-1}·y = (y.A + p·y.C, y.B + p·y.D; y.C, y.D) must lie in
	// H₀, i.e. have all canonical entries in F_q. y is canonical, so either
	// y.D == 1 (then p must cancel the non-constant part of y.B) or
	// y.D == 0, y.C == 1 (then p cancels the non-constant part of y.A).
	var p uint32
	if y.D == 1 {
		p = f.ClearConst(y.B)
	} else {
		p = f.ClearConst(y.A)
	}
	m := s.G.Mul(s.G.Translate(p), y) // (1 p; 0 1)^{-1} = (1 p; 0 1) in char 2
	if !s.G.InH0(m) {
		return 0, fmt.Errorf("core: variable %v has no copy in module %d", a, j)
	}
	return f.PIndex(p), nil
}

// CopyLocation resolves copy c of the variable with representative a to its
// physical address (module index, in-module offset). This is the processor-
// side address computation of Theorem 1: O(log N)-time, O(1)-space.
func (s *Scheme) CopyLocation(a pgl.Mat, c int) (module uint64, offset uint32) {
	j := s.ModuleIndex(s.CopyModuleMat(a, c))
	off, err := s.Offset(a, j)
	if err != nil {
		// Lemma 1 guarantees adjacency for every copy index; reaching this
		// branch means memory corruption or an internal bug.
		panic(err)
	}
	return j, off
}

// VarKey returns the canonical coset key identifying the variable a·H₀.
// Two representatives denote the same variable iff their keys are equal.
func (s *Scheme) VarKey(a pgl.Mat) pgl.Mat { return s.G.CosetKeyH0(a) }

// Params returns a human-readable summary of the instance.
func (s *Scheme) Params() string {
	return fmt.Sprintf("q=%d n=%d N=%d M=%d copies=%d majority=%d moduleSize=%d",
		s.Q, s.Deg, s.NumModules, s.NumVariables, s.Copies, s.Majority, s.ModuleSize)
}
