package core

import (
	"testing"

	"detshmem/internal/pgl"
)

// hn1Elements enumerates H_{n-1} = {(a α; 0 1): a ∈ F_q^*, α ∈ F_{q^n}} in
// canonical form.
func hn1Elements(s *Scheme) []pgl.Mat {
	out := make([]pgl.Mat, 0, int(s.Q-1)*int(s.F.Order))
	for a := uint32(1); a < s.Q; a++ {
		for al := uint32(0); al < s.F.Order; al++ {
			out = append(out, s.G.MustMake(a, al, 0, 1))
		}
	}
	return out
}

// cosetElements materializes the canonical matrices of g·H for the given
// subgroup element list.
func cosetElements(s *Scheme, g pgl.Mat, sub []pgl.Mat) map[pgl.Mat]bool {
	out := make(map[pgl.Mat]bool, len(sub))
	for _, h := range sub {
		out[s.G.Mul(g, h)] = true
	}
	return out
}

// TestLemma4IntersectionFormulas verifies Lemma 4 exhaustively on small
// instances: for every module j = f(s,t) and offset k, the intersection
// B_j·H_{n-1} ∩ C_k^j·H₀ equals
//
//	t = −1:  { (a·γ^s, (p_k+b)·γ^s; 0, 1)            : a ∈ F_q^*, b ∈ F_q }
//	t >= 0:  { (a·α_t, (p_k+b)·α_t + γ^s; a, p_k+b)  : a ∈ F_q^*, b ∈ F_q }
//
// and in particular has exactly |H₀ ∩ H_{n-1}| = q(q−1) projective elements
// … of which q−1 scalar-collapse classes remain in PGL (the edge ↔ coset
// correspondence of Section 2).
func TestLemma4IntersectionFormulas(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 3}, {2, 3}} {
		s := newScheme(t, c.m, c.n)
		f := s.F
		hn1 := hn1Elements(s)
		h0 := s.G.H0Elements()
		k := uint64(f.Order)
		for j := uint64(0); j < s.NumModules; j += 5 {
			b := s.ModuleMat(j)
			cs := uint32(j / (k + 1))
			tt := int64(j%(k+1)) - 1
			gs := f.Exp(int(cs))
			bset := cosetElements(s, b, hn1)
			for off := uint32(0); off < s.ModuleSize; off += 3 {
				ck := s.ModuleVarMat(j, off)
				cset := cosetElements(s, ck, h0)
				inter := make(map[pgl.Mat]bool)
				for m := range cset {
					if bset[m] {
						inter[m] = true
					}
				}
				// Expected set from Lemma 4's closed form.
				want := make(map[pgl.Mat]bool)
				pk := f.PElem(off)
				for a := uint32(1); a < s.Q; a++ {
					for bb := uint32(0); bb < s.Q; bb++ {
						pkb := f.Add(pk, bb)
						var m pgl.Mat
						if tt == -1 {
							m = s.G.MustMake(f.Mul(a, gs), f.Mul(pkb, gs), 0, 1)
						} else {
							at := uint32(tt)
							m = s.G.MustMake(
								f.Mul(a, at),
								f.Add(f.Mul(pkb, at), gs),
								a, pkb)
						}
						want[m] = true
					}
				}
				if len(inter) != len(want) {
					t.Fatalf("q=%d j=%d k=%d: intersection size %d, formula size %d",
						s.Q, j, off, len(inter), len(want))
				}
				for m := range want {
					if !inter[m] {
						t.Fatalf("q=%d j=%d k=%d: formula element %v missing from intersection",
							s.Q, j, off, m)
					}
				}
			}
		}
	}
}

// TestEdgeCosetCorrespondence: the edges of G are in bijection with the
// cosets of H₀ ∩ H_{n-1} (Section 2): |E| = |PGL₂(qⁿ)| / |H₀ ∩ H_{n-1}| with
// |H₀ ∩ H_{n-1}| = q(q−1)/(q−1)·… — as canonical projective matrices,
// {(a b; 0 1): a ∈ F_q^*, b ∈ F_q} has q(q−1) members, and the projective
// order of the subgroup is q(q−1)/1 (scalars already quotiented). The edge
// count must also equal M(q+1) = N·q^{n-1}.
func TestEdgeCosetCorrespondence(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 3}, {1, 5}, {2, 3}} {
		s := newScheme(t, c.m, c.n)
		// |H₀ ∩ H_{n-1}| by enumeration.
		cnt := uint64(0)
		for _, h := range s.G.H0Elements() {
			if s.G.InHn1(h) {
				cnt++
			}
		}
		wantSub := uint64(s.Q) * uint64(s.Q-1)
		if cnt != wantSub {
			t.Fatalf("q=%d: |H₀∩H_{n-1}| = %d, want q(q−1) = %d", s.Q, cnt, wantSub)
		}
		edges := s.G.Order() / cnt
		if edges != s.NumVariables*uint64(s.Q+1) {
			t.Fatalf("q=%d n=%d: |PGL|/|H₀∩H_{n-1}| = %d != M(q+1) = %d",
				s.Q, c.n, edges, s.NumVariables*uint64(s.Q+1))
		}
		if edges != s.NumModules*uint64(s.ModuleSize) {
			t.Fatalf("q=%d n=%d: edge count != N·q^{n-1}", s.Q, c.n)
		}
	}
}

// TestGammaLemma1Lemma2Duality: v ∈ Γ(u) iff u ∈ Γ(v), checked through both
// lemmas' parameterizations.
func TestGammaLemma1Lemma2Duality(t *testing.T) {
	s := newScheme(t, 1, 5)
	for j := uint64(0); j < s.NumModules; j += 17 {
		for k := uint32(0); k < s.ModuleSize; k += 5 {
			v := s.ModuleVarMat(j, k)
			found := false
			for c := 0; c < s.Copies; c++ {
				if s.ModuleIndex(s.CopyModuleMat(v, c)) == j {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("module %d stores offset %d but the variable does not list it", j, k)
			}
		}
	}
}
