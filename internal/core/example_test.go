package core_test

import (
	"fmt"

	"detshmem/internal/core"
)

// Example demonstrates the processor-side address computation: a variable
// index becomes a PGL₂ coset representative, and each of its q+1 copies
// resolves to a (module, offset) physical address in O(log N) time.
func Example() {
	scheme, err := core.New(1, 5) // q=2, n=5: N=1023, M=5456
	if err != nil {
		panic(err)
	}
	idx, err := scheme.NewIndexer()
	if err != nil {
		panic(err)
	}
	a := idx.Mat(42)
	for c := 0; c < scheme.Copies; c++ {
		module, offset := scheme.CopyLocation(a, c)
		fmt.Printf("copy %d: module %d offset %d\n", c, module, offset)
	}
	// The inverse direction recovers the variable index from any
	// representative of its coset.
	if inv, ok := idx.(core.Inverter); ok {
		i, _ := inv.Index(a)
		fmt.Printf("inverse: %d\n", i)
	}
	// Output:
	// copy 0: module 166 offset 11
	// copy 1: module 513 offset 2
	// copy 2: module 377 offset 4
	// inverse: 42
}
