package core

import (
	"detshmem/internal/pgl"
)

// Index inverts the Theorem 8 bijection: given any representative m of a
// variable coset, it returns the variable's index. The coset m·H₀ contains
// |H₀| = 6 projective matrices (q = 2); exactly one of them matches one of
// the S₁–S₄ patterns, and the match is recognized algebraically:
// under the ⟨α, β⟩ row encoding, a projective scaling multiplies both α and
// β by the same element of F_{2^n}^*, so
//
//	S₁/S₂ require α ∈ F_{2^n}^* and classify by log_λ(β/α);
//	S₃ requires β ∈ F_{2^n}^* and classifies by log_λ(α/β);
//	S₄ requires log_λ(α) ≡ s (mod σ) for an admissible s and classifies
//	    the rescaled β exponent as i + jρ.
//
// Total cost is O(1) discrete logs and arithmetic per coset element —
// O(log N) overall, matching the paper's address-computation budget.
func (e *ExplicitIndexer) Index(m pgl.Mat) (uint64, bool) {
	for _, h := range e.s.G.H0Elements() {
		if i, ok := e.classify(e.s.G.Mul(m, h)); ok {
			return i, true
		}
	}
	return 0, false
}

// classify tests whether the specific projective matrix m (not its whole
// coset) lies in S₁ ∪ S₂ ∪ S₃ ∪ S₄ and returns its index if so.
func (e *ExplicitIndexer) classify(m pgl.Mat) (uint64, bool) {
	qd := e.qd
	f2 := qd.Ext2
	alpha := qd.Pair(m.A, m.B)
	beta := qd.Pair(m.C, m.D)
	// Nonsingular matrices have no zero row, so alpha, beta != 0.
	ord := uint64(f2.Order) - 1
	la := uint64(f2.Log(alpha))
	lb := uint64(f2.Log(beta))

	if qd.InSubfield(alpha) { // α can be rescaled to 1: S₁ or S₂ patterns
		eRatio := (lb + ord - la) % ord
		// S₁: β/α = λ^{iσ+ρ} with iσ + ρ < ord + ρ and iσ < ord exactly.
		if d := (eRatio + ord - uint64(qd.Rho)) % ord; d%uint64(qd.Sigma) == 0 {
			if i := d / uint64(qd.Sigma); i < e.c1 {
				return i, true
			}
		}
		// S₂: β/α = λ^{k(s,t)+jρ} (exact: k + jρ < 3ρ = ord).
		if s, t, j, ok := e.invertK(eRatio); ok {
			return e.c1 + e.rankS23(s, t, j), true
		}
		return 0, false
	}
	if qd.InSubfield(beta) { // β rescales to 1: S₃ pattern
		eRatio := (la + ord - lb) % ord
		if s, t, j, ok := e.invertK(eRatio); ok {
			return e.c1 + e.c2 + e.rankS23(s, t, j), true
		}
		return 0, false
	}
	// S₄: need s ≡ log α (mod σ) with 1 <= s <= sMax; then the common
	// rescaling by λ^{s}/α pins β's exponent to i + jρ.
	s := la % uint64(qd.Sigma)
	if s < 1 || s > e.sMax {
		return 0, false
	}
	e2 := (lb + s + ord - la) % ord
	j := e2 / e.rho
	i := e2 % e.rho
	if i == 0 || i%e.tau == 0 {
		return 0, false
	}
	ks0 := e.k(s, 0) // equals s for s <= sMax < ρ, kept explicit for clarity
	if e.cJ(ks0, j) == i%e.sigma {
		// The excluded subfield-ratio case: this matrix is singular-adjacent
		// in the construction and not an S₄ member.
		return 0, false
	}
	rank := (s-1)*e.c4s + e.validS4Count(ks0, j, i) - 1
	for jj := uint64(0); jj < j; jj++ {
		rank += e.validS4Count(ks0, jj, e.rho-1)
	}
	return e.c1 + 2*e.c2 + rank, true
}

// rankS23 is the position of (s, t, j) within S₂'s (or S₃'s) ordering.
func (e *ExplicitIndexer) rankS23(s, t, j uint64) uint64 {
	return (s-1)*e.c1*3 + t*3 + j
}

// invertK decomposes eRatio = k(s,t) + jρ into valid (s, t, j), exploiting
// that s + tσ is the base-σ representation (s < σ) and that the admissible
// ranges make the decomposition unique.
func (e *ExplicitIndexer) invertK(eRatio uint64) (s, t, j uint64, ok bool) {
	j = eRatio / e.rho
	k := eRatio % e.rho
	nPow := e.c1 + 1 // 2^n
	for delta := uint64(0); delta < 3; delta++ {
		val := k + delta*e.rho
		s = val % e.sigma
		t = val / e.sigma
		if s >= 1 && s <= e.sMax && t < nPow-1 {
			return s, t, j, true
		}
	}
	return 0, 0, 0, false
}
