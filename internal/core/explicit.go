package core

import (
	"fmt"

	"detshmem/internal/gf"
	"detshmem/internal/pgl"
)

// ExplicitIndexer is the Section 4 / Theorem 8 variable-index bijection for
// q = 2 and n odd. Matrices are encoded as pairs ⟨α, β⟩ of elements of the
// quadratic extension F_{2^{2n}} (one per row, in the basis (w, 1) over
// F_{2^n}, w = λ^ρ a cube root of unity outside the subfield), and the M
// coset representatives are split into the four families
//
//	S₁ = { ⟨1, λ^{iσ}·w⟩ : 0 ≤ i < 2^n−1 }
//	S₂ = { ⟨1, λ^{k(s,t)}·w^j⟩ }
//	S₃ = { ⟨λ^{k(s,t)}·w^j, 1⟩ }
//	S₄ = { ⟨λ^{k(s,0)}, λ^i·w^j⟩ : 1 ≤ i < ρ, τ ∤ i,
//	       λ^{k(s,0)}·(w^j·λ^i)^{-1} ∉ F_{2^n}^* }
//
// with k(s,t) = (s + tσ) mod ρ, s ∈ [1, (2^{n-1}−1)/3], t ∈ [0, 2^n−1),
// j ∈ {0,1,2}. Theorem 8 states these are a complete set of representatives
// of PGL₂(2ⁿ)/H₀; the package's tests verify this exhaustively for n = 3, 5
// and against edge enumeration for n = 7.
//
// Decoding an index costs O(1): closed-form arithmetic for S₁–S₃ and a
// periodic unranking for S₄ (the S₄ exclusions "τ | i" and
// "i ≡ k(s,0) − jρ (mod σ)" are arithmetic progressions with period σ, so
// both ranking and unranking are computable in O(1)).
type ExplicitIndexer struct {
	s  *Scheme
	qd *gf.Quad

	c1   uint64 // |S₁| = 2^n − 1
	c2   uint64 // |S₂| = |S₃| = (2^n−1)(2^{n-1}−1)
	c4   uint64 // |S₄|
	c4s  uint64 // per-s block of S₄: (2^n−1)(2^n−3)
	sMax uint64 // (2^{n-1}−1)/3

	rho, sigma, tau uint64
}

// NewExplicitIndexer builds the Theorem 8 bijection. It requires q = 2 and
// n odd (and 2n within the field-table budget).
func NewExplicitIndexer(s *Scheme) (*ExplicitIndexer, error) {
	if s.Q != 2 || s.Deg%2 == 0 {
		return nil, errNotApplicable(s.Q, s.Deg)
	}
	qd, err := gf.NewQuad(s.Deg)
	if err != nil {
		return nil, err
	}
	n := uint(s.Deg)
	pow := uint64(1) << n // 2^n
	e := &ExplicitIndexer{
		s:     s,
		qd:    qd,
		c1:    pow - 1,
		c2:    (pow - 1) * (pow/2 - 1),
		sMax:  (pow/2 - 1) / 3,
		rho:   uint64(qd.Rho),
		sigma: uint64(qd.Sigma),
		tau:   uint64(qd.Tau),
	}
	e.c4s = (pow - 1) * (pow - 3)
	e.c4 = e.sMax * e.c4s
	if got, want := e.c1+2*e.c2+e.c4, s.NumVariables; got != want {
		return nil, fmt.Errorf("core: internal: |S₁|+|S₂|+|S₃|+|S₄| = %d != M = %d", got, want)
	}
	return e, nil
}

// M returns the number of variables.
func (e *ExplicitIndexer) M() uint64 { return e.s.NumVariables }

// k computes k(s,t) = (s + t·σ) mod ρ.
func (e *ExplicitIndexer) k(s, t uint64) uint64 { return (s + t*e.sigma) % e.rho }

// matFromPair converts the row encoding ⟨α, β⟩ into a canonical PGL₂ matrix.
func (e *ExplicitIndexer) matFromPair(alpha, beta uint32) pgl.Mat {
	x1, y1 := e.qd.Unpair(alpha)
	x2, y2 := e.qd.Unpair(beta)
	return e.s.G.MustMake(x1, y1, x2, y2)
}

// Mat decodes variable index i into its coset representative A_i.
func (e *ExplicitIndexer) Mat(i uint64) pgl.Mat {
	if i >= e.M() {
		panic(fmt.Sprintf("core: variable index %d out of range [0,%d)", i, e.M()))
	}
	switch {
	case i < e.c1:
		// S₁: ⟨1, λ^{iσ}·w⟩ = ⟨1, λ^{iσ+ρ}⟩.
		return e.matFromPair(1, e.qd.Lambda(int(i*e.sigma+e.rho)))
	case i < e.c1+e.c2:
		s, t, j := e.splitS23(i - e.c1)
		return e.matFromPair(1, e.qd.Lambda(int(e.k(s, t)+j*e.rho)))
	case i < e.c1+2*e.c2:
		s, t, j := e.splitS23(i - e.c1 - e.c2)
		return e.matFromPair(e.qd.Lambda(int(e.k(s, t)+j*e.rho)), 1)
	default:
		return e.matS4(i - e.c1 - 2*e.c2)
	}
}

// splitS23 decomposes an offset within S₂ (or S₃) into (s, t, j):
// blocks of (2^n−1)·3 per s, then 3 per t, then j.
func (e *ExplicitIndexer) splitS23(off uint64) (s, t, j uint64) {
	perS := e.c1 * 3 // (2^n−1) values of t × 3 values of j
	s = 1 + off/perS
	rem := off % perS
	return s, rem / 3, rem % 3
}

// matS4 decodes an offset within S₄. For fixed s and j the admissible i form
// the set {1 ≤ i < ρ : τ ∤ i, i ≢ c_j (mod σ)} with
// c_j = (k(s,0) − jρ) mod σ; rankUpTo counts them, and a binary search
// recovers the i of a given rank.
func (e *ExplicitIndexer) matS4(off uint64) pgl.Mat {
	s := 1 + off/e.c4s
	r := off % e.c4s
	ks0 := e.k(s, 0)
	var j uint64
	for j = 0; j < 3; j++ {
		cnt := e.validS4Count(ks0, j, e.rho-1)
		if r < cnt {
			break
		}
		r -= cnt
	}
	if j == 3 {
		panic("core: internal: S₄ rank exceeded per-s block")
	}
	i := e.unrankS4(ks0, j, r)
	alpha := e.qd.Lambda(int(ks0))
	beta := e.qd.Lambda(int(i + j*e.rho))
	return e.matFromPair(alpha, beta)
}

// cJ returns c_j = (k(s,0) − jρ) mod σ, the excluded residue class.
func (e *ExplicitIndexer) cJ(ks0, j uint64) uint64 {
	m := int64(ks0) - int64(j)*int64(e.rho)
	m %= int64(e.sigma)
	if m < 0 {
		m += int64(e.sigma)
	}
	return uint64(m)
}

// validS4Count counts admissible i in [1, x] for fixed (s, j): those not
// divisible by τ and not ≡ c_j (mod σ). Because σ = 3τ, an i ≡ c_j (mod σ)
// is a multiple of τ exactly when τ | c_j, in which case the congruence
// class is already excluded by the τ rule and must not be double-counted.
func (e *ExplicitIndexer) validS4Count(ks0, j, x uint64) uint64 {
	bad := x / e.tau
	c := e.cJ(ks0, j)
	if c%e.tau != 0 {
		bad += countCong(x, c, e.sigma)
	}
	return x - bad
}

// countCong counts i in [1, x] with i ≡ c (mod m), 0 <= c < m.
func countCong(x, c, m uint64) uint64 {
	if c == 0 {
		return x / m
	}
	if c > x {
		return 0
	}
	return (x-c)/m + 1
}

// unrankS4 finds the admissible i of rank r (0-based) for fixed (s, j) in
// closed form: the exclusions repeat with period σ (σ = 3τ puts exactly three
// τ-multiples and at most one extra c_j offset in every window [kσ+1, kσ+σ]),
// so whole periods contribute a fixed count and the residual rank is an order
// statistic within one period against at most four sorted excluded offsets.
// O(1) with a single division — this replaces an O(log ρ) binary search whose
// per-probe counting divisions dominated decode time (S₄ holds the vast
// majority of the variables: |S₄|/M → 1 as n grows).
func (e *ExplicitIndexer) unrankS4(ks0, j, r uint64) uint64 {
	c := e.cJ(ks0, j)
	v := e.sigma - 3
	cx := c%e.tau != 0 // c_j is an exclusion on top of the three τ-multiples
	if cx {
		v--
	}
	k := r / v
	o := r%v + 1
	// Walk o past the period's excluded offsets in increasing order; once one
	// exceeds o the rest do too (o only grows by absorbing smaller ones).
	ex := [4]uint64{e.tau, 2 * e.tau, e.sigma, ^uint64(0)}
	if cx {
		switch {
		case c < e.tau:
			ex = [4]uint64{c, e.tau, 2 * e.tau, e.sigma}
		case c < 2*e.tau:
			ex = [4]uint64{e.tau, c, 2 * e.tau, e.sigma}
		default:
			ex = [4]uint64{e.tau, 2 * e.tau, c, e.sigma}
		}
	}
	for _, x := range ex {
		if x > o {
			break
		}
		o++
	}
	return k*e.sigma + o
}

// SetSizes reports (|S₁|, |S₂|, |S₃|, |S₄|) for inspection and tests.
func (e *ExplicitIndexer) SetSizes() (uint64, uint64, uint64, uint64) {
	return e.c1, e.c2, e.c2, e.c4
}
