package core

import (
	"fmt"

	"detshmem/internal/pgl"
)

// Batched copy-location resolution. The per-op path (CopyLocation) pays, per
// copy, a general PGL product against the involution, a module-matrix
// construction, a general inverse and two more general products — each with
// its own canonicalization. The batched path below processes a vector of
// variable representatives in fixed-size blocks and, per copy index,
//
//   - multiplies the whole block by the (fixed) involution with the
//     two-multiply specialized kernel,
//   - evaluates the module coset keys with the fused log-domain kernel, and
//   - computes each in-module offset directly from the coset key (s, t):
//     the module representative's inverse has the closed forms
//     (γ^{-s} 0; 0 1) and (0 γ^s; 1 α_t), so B_j^{-1}·a costs two field
//     products when t = −1 (and is already canonical — the bottom row of a
//     is untouched) and four products plus one normalization otherwise,
//     skipping ModuleMat, the general inverse and both general products.
//
// All scratch is fixed-size stack arrays, so resolution over any vector
// length allocates nothing.

// ResolveModules is the batched form of VarModules over a vector of variable
// representatives: mods[i*copies+c] receives the module index of copy c of
// mats[i], for c in [0, copies). copies must be in [1, s.Copies] and
// len(mods) must be at least len(mats)*copies.
func (s *Scheme) ResolveModules(mats []pgl.Mat, copies int, mods []uint64) {
	s.resolveBatch(mats, copies, mods, nil)
}

// ResolveCopies is the batched form of CopyLocation over a vector of variable
// representatives: mods[i*copies+c] and offs[i*copies+c] receive the module
// index and in-module offset of copy c of mats[i]. copies must be in
// [1, s.Copies]; mods and offs must be at least len(mats)*copies long. Like
// CopyLocation it panics if a resolved copy is not stored where Lemma 1 says
// it must be (memory corruption or an internal bug).
func (s *Scheme) ResolveCopies(mats []pgl.Mat, copies int, mods []uint64, offs []uint32) {
	s.resolveBatch(mats, copies, mods, offs)
}

// resolveBatch runs the whole resolution of one variable — all copies, keys
// and offsets — as a single fused log-domain loop. Two algebraic facts fuse
// what the first batched kernels (MulInvolutionVec + CosetKeyHn1Vec) still
// did as separate canonicalizing passes:
//
//   - the involution (α 1; 1 0) has determinant −1 = 1 projectively in
//     characteristic 2, so det(A·h_c) = det(A): one determinant log per
//     variable serves every copy's coset key;
//   - the H_{n-1} coset key is invariant under scalar rescaling (s reads
//     det/C² and t reads A/C, both degree-0), so it can be evaluated on the
//     raw shear product (A·α+B, A; C·α+D, C) with no canonicalization at
//     all — the per-element general canon (an inverse plus four products)
//     vanishes from the per-copy cost.
//
// What remains per copy is two multiplies by the small-field α, three or four
// log/exp table reads for the key, and the closed-form offset.
func (s *Scheme) resolveBatch(mats []pgl.Mat, copies int, mods []uint64, offs []uint32) {
	if copies < 1 || copies > s.Copies {
		panic(fmt.Sprintf("core: batched resolution with copies=%d outside [1, %d]", copies, s.Copies))
	}
	f := s.F
	ord := int32(f.Order) - 1 // |F_{q^n}^*|
	ugi := int32(f.UnitGroupIndex())
	// For q = 2 the unit-group index equals the group order, so the final
	// mod-ugi reduction of each key is the identity; skipping it leaves the
	// whole kernel free of hardware divisions (the mod-ord reductions below
	// are conditional subtracts on already-bounded exponents).
	needUgi := ugi != ord
	k1 := uint64(f.Order) + 1
	for vi := range mats {
		a := mats[vi]
		ldet := int32(f.Log(f.Add(f.Mul(a.A, a.D), f.Mul(a.B, a.C))))
		// The entry logs feed every copy's offset computation (−1 for zero
		// entries; each use is zero-guarded).
		lgA, lgB := f.LogT(a.A), f.LogT(a.B)
		lgC, lgD := f.LogT(a.C), f.LogT(a.D)
		for c := 0; c < copies; c++ {
			// Copy c's module is represented by A·h_{c-1} = (Aα+B, A; Cα+D, C)
			// (copy 0 by A itself); only the two key-bearing columns matter.
			var cA, cC, cD uint32
			switch c {
			case 0:
				cA, cC, cD = a.A, a.C, a.D
			case 1: // α = 0: the shear contributes nothing
				cA, cC, cD = a.B, a.D, a.C
			case 2: // α = 1: multiplication is the identity
				cA, cC, cD = a.A^a.B, a.C^a.D, a.C
			default:
				al := uint32(c - 1)
				cA = f.Add(f.Mul(a.A, al), a.B)
				cC = f.Add(f.Mul(a.C, al), a.D)
				cD = a.C
			}
			var cs uint32
			var ct int32
			if cC == 0 {
				// Upper triangular: s = log(A/D) mod ugi (D ≠ 0, else the
				// representative would be singular), t = −1.
				x := f.LogT(cA) - f.LogT(cD) // ∈ (−ord, ord)
				if x < 0 {
					x += ord
				}
				if needUgi {
					x %= ugi
				}
				cs = uint32(x)
				ct = -1
			} else {
				lc := f.LogT(cC)
				x := ldet - 2*lc + 2*ord // ∈ (2, 3·ord)
				if x >= ord {
					x -= ord
				}
				if x >= ord {
					x -= ord
				}
				if needUgi {
					x %= ugi
				}
				cs = uint32(x)
				if cA == 0 {
					ct = 0
				} else {
					ct = int32(f.ExpT(f.LogT(cA) - lc + ord)) // exponent ∈ (0, 2·ord)
				}
			}
			pos := vi*copies + c
			mods[pos] = uint64(cs)*k1 + uint64(ct+1) // f(s,t) = s·(q^n+1) + t + 1
			if offs != nil {
				offs[pos] = s.offsetByLogs(a, lgA, lgB, lgC, lgD, cs, ct)
			}
		}
	}
}

// offsetByLogs is Offset specialized for a module given by its coset key
// (s, t) rather than its index, using the closed-form adjugates described
// above. a must be canonical (as Indexer.Mat returns); lgA…lgD are the raw
// entry logs (LogT), hoisted by the caller because all q+1 copies of a
// variable share them. The whole computation stays in the rebased log domain:
// the entries of B_j^{-1}·a, normalized so the bottom row leads with 1, are
// each one doubled-exp-table read at exponent (entry log + rebase), where the
// rebase folds γ^{±s} and the normalizing division into a single shift in
// [0, Order−1) — no canon, no general inverse, and no per-read modulo.
func (s *Scheme) offsetByLogs(a pgl.Mat, lgA, lgB, lgC, lgD int32, cs uint32, ct int32) uint32 {
	f := s.F
	ord := int32(f.Order) - 1
	var yA, yB, yC, yD uint32
	if ct == -1 {
		// B_j = (γ^s 0; 0 1): B_j^{-1}·a = (γ^{-s}·A, γ^{-s}·B; C, D), whose
		// bottom row is a's — already canonical (a is). Rebase = −s mod ord.
		rb := ord - int32(cs) // ∈ (0, ord]; exp[l+rb] ∈ [0, 2·ord) for l < ord
		if a.A != 0 {
			yA = f.ExpT(lgA + rb)
		}
		if a.B != 0 {
			yB = f.ExpT(lgB + rb)
		}
		yC, yD = a.C, a.D
	} else {
		// B_j = (α_t γ^s; 1 0): the adjugate is (0 γ^s; 1 α_t), so
		// B_j^{-1}·a ~ (γ^s·C, γ^s·D; A+α_t·C, B+α_t·D). Normalizing by the
		// leading bottom-row entry is a log subtraction folded into the
		// rebase; the other bottom-row entry is its ratio against the leader.
		t := uint32(ct)
		c2 := f.Add(a.A, f.Mul(t, a.C))
		d2 := f.Add(a.B, f.Mul(t, a.D))
		if d2 != 0 {
			ld2 := f.LogT(d2)
			rb := int32(cs) - ld2
			if rb < 0 {
				rb += ord
			}
			if a.C != 0 {
				yA = f.ExpT(lgC + rb)
			}
			if a.D != 0 {
				yB = f.ExpT(lgD + rb)
			}
			if c2 != 0 {
				yC = f.ExpT(f.LogT(c2) - ld2 + ord)
			}
			yD = 1
		} else {
			// c2 ≠ 0 here, or B_j^{-1}·a would be singular.
			rb := int32(cs) - f.LogT(c2)
			if rb < 0 {
				rb += ord
			}
			if a.C != 0 {
				yA = f.ExpT(lgC + rb)
			}
			if a.D != 0 {
				yB = f.ExpT(lgD + rb)
			}
			yC, yD = 1, 0
		}
	}
	var p uint32
	if yD == 1 {
		p = f.ClearConst(yB)
	} else {
		p = f.ClearConst(yA)
	}
	// The membership check of Offset, inlined: (1 p; 0 1)·y leaves the bottom
	// row of the (canonical) y unchanged, so no renormalization is needed.
	ma := f.Add(yA, f.Mul(p, yC))
	mb := f.Add(yB, f.Mul(p, yD))
	if !(f.InBase(ma) && f.InBase(mb) && f.InBase(yC) && f.InBase(yD)) {
		panic(fmt.Sprintf("core: batched offset: variable %v has no copy in module (s=%d, t=%d)", a, cs, ct))
	}
	return f.PIndex(p)
}
