package core

import (
	"math/rand"
	"testing"
)

// TestExplicitIndexRoundTripExhaustive: Index(Mat(i)) == i for every
// variable, and for random non-canonical representatives of the coset.
func TestExplicitIndexRoundTripExhaustive(t *testing.T) {
	for _, n := range []int{3, 5} {
		s := newScheme(t, 1, n)
		ex, err := NewExplicitIndexer(s)
		if err != nil {
			t.Fatal(err)
		}
		h0 := s.G.H0Elements()
		rng := rand.New(rand.NewSource(int64(n)))
		for i := uint64(0); i < ex.M(); i++ {
			a := ex.Mat(i)
			got, ok := ex.Index(a)
			if !ok || got != i {
				t.Fatalf("n=%d: Index(Mat(%d)) = %d,%v", n, i, got, ok)
			}
			// Any representative of the coset must yield the same index.
			ar := s.G.Mul(a, h0[rng.Intn(len(h0))])
			got, ok = ex.Index(ar)
			if !ok || got != i {
				t.Fatalf("n=%d: Index on alternate representative of %d = %d,%v", n, i, got, ok)
			}
		}
	}
}

// TestExplicitIndexMatchesEnumerated: both inverters agree on coset
// identity for n = 5.
func TestExplicitIndexMatchesEnumerated(t *testing.T) {
	s := newScheme(t, 1, 5)
	ex, err := NewExplicitIndexer(s)
	if err != nil {
		t.Fatal(err)
	}
	en := NewEnumeratedIndexer(s)
	for i := uint64(0); i < en.M(); i++ {
		a := en.Mat(i)
		exIdx, ok := ex.Index(a)
		if !ok {
			t.Fatalf("explicit inverter missed coset %d", i)
		}
		if s.VarKey(ex.Mat(exIdx)) != s.VarKey(a) {
			t.Fatalf("explicit inverter returned wrong coset for %d", i)
		}
	}
}

// TestExplicitIndexLargeSampled: round-trips on n = 9 (M = 22.4M), sampled.
func TestExplicitIndexLargeSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	s := newScheme(t, 1, 9)
	ex, err := NewExplicitIndexer(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20000; trial++ {
		i := uint64(rng.Int63n(int64(ex.M())))
		got, ok := ex.Index(ex.Mat(i))
		if !ok || got != i {
			t.Fatalf("Index(Mat(%d)) = %d,%v", i, got, ok)
		}
	}
}

// TestExplicitIndexClassifyUniqueness: exactly one of the 6 coset members
// matches a pattern (a sharper form of Theorem 8's distinctness).
func TestExplicitIndexClassifyUniqueness(t *testing.T) {
	s := newScheme(t, 1, 5)
	ex, err := NewExplicitIndexer(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < ex.M(); i += 7 {
		a := ex.Mat(i)
		hits := 0
		for _, h := range s.G.H0Elements() {
			if _, ok := ex.classify(s.G.Mul(a, h)); ok {
				hits++
			}
		}
		if hits != 1 {
			t.Fatalf("coset %d has %d pattern matches, want exactly 1", i, hits)
		}
	}
}
