package core

import (
	"testing"

	"detshmem/internal/pgl"
)

func TestEnumeratedIndexerBijection(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 3}, {1, 5}, {2, 3}} {
		s := newScheme(t, c.m, c.n)
		idx := NewEnumeratedIndexer(s)
		if idx.M() != s.NumVariables {
			t.Fatalf("q=%d n=%d: indexer M = %d, want %d", s.Q, c.n, idx.M(), s.NumVariables)
		}
		seen := make(map[pgl.Mat]bool, idx.M())
		for i := uint64(0); i < idx.M(); i++ {
			key := s.VarKey(idx.Mat(i))
			if seen[key] {
				t.Fatalf("index %d repeats a coset", i)
			}
			seen[key] = true
			back, ok := idx.Index(key)
			if !ok || back != i {
				t.Fatalf("Index(Mat(%d)) = %d,%v", i, back, ok)
			}
		}
	}
}

// TestExplicitIndexerMatchesTheorem8 verifies, exhaustively for n = 3 and 5,
// that the S₁–S₄ construction yields M matrices in pairwise-distinct H₀
// cosets — i.e. a complete set of representatives (Theorem 8).
func TestExplicitIndexerMatchesTheorem8(t *testing.T) {
	for _, n := range []int{3, 5} {
		s := newScheme(t, 1, n)
		ex, err := NewExplicitIndexer(s)
		if err != nil {
			t.Fatal(err)
		}
		if ex.M() != s.NumVariables {
			t.Fatalf("n=%d: explicit M = %d, want %d", n, ex.M(), s.NumVariables)
		}
		c1, c2, c3, c4 := ex.SetSizes()
		if c1+c2+c3+c4 != s.NumVariables {
			t.Fatalf("n=%d: set sizes %d+%d+%d+%d != M", n, c1, c2, c3, c4)
		}
		seen := make(map[pgl.Mat]uint64, ex.M())
		for i := uint64(0); i < ex.M(); i++ {
			key := s.VarKey(ex.Mat(i))
			if prev, dup := seen[key]; dup {
				t.Fatalf("n=%d: indices %d and %d map to the same coset", n, prev, i)
			}
			seen[key] = i
		}
		// Completeness: the keys coincide with the enumerated universe.
		en := NewEnumeratedIndexer(s)
		for i := uint64(0); i < en.M(); i++ {
			if _, ok := seen[s.VarKey(en.Mat(i))]; !ok {
				t.Fatalf("n=%d: enumerated coset %d missing from explicit indexing", n, i)
			}
		}
	}
}

// TestExplicitIndexerLarge spot-checks distinctness on n = 7 (M = 349504)
// via full key enumeration — large but linear.
func TestExplicitIndexerLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	s := newScheme(t, 1, 7)
	ex, err := NewExplicitIndexer(s)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[pgl.Mat]bool, ex.M())
	for i := uint64(0); i < ex.M(); i++ {
		key := s.VarKey(ex.Mat(i))
		if seen[key] {
			t.Fatalf("duplicate coset at index %d", i)
		}
		seen[key] = true
	}
	if uint64(len(seen)) != s.NumVariables {
		t.Fatalf("covered %d of %d cosets", len(seen), s.NumVariables)
	}
}

func TestExplicitIndexerRejectsBadParams(t *testing.T) {
	s4 := newScheme(t, 2, 3)
	if _, err := NewExplicitIndexer(s4); err == nil {
		t.Error("q=4 accepted")
	}
	s6 := newScheme(t, 1, 6)
	if _, err := NewExplicitIndexer(s6); err == nil {
		t.Error("even n accepted")
	}
}

func TestExplicitIndexerPanicsOutOfRange(t *testing.T) {
	s := newScheme(t, 1, 3)
	ex, err := NewExplicitIndexer(s)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range index")
		}
	}()
	ex.Mat(ex.M())
}

func TestNewIndexerSelection(t *testing.T) {
	s := newScheme(t, 1, 5)
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := idx.(*ExplicitIndexer); !ok {
		t.Errorf("q=2 n=5: expected explicit indexer, got %T", idx)
	}
	s4 := newScheme(t, 2, 3)
	idx4, err := s4.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := idx4.(*CompactIndexer); !ok {
		t.Errorf("q=4: expected compact indexer, got %T", idx4)
	}
}
