package core

import (
	"math"
	"math/rand"
	"testing"

	"detshmem/internal/pgl"
)

func newScheme(t testing.TB, m, n int) *Scheme {
	t.Helper()
	s, err := New(m, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFact1Parameters checks the counting formulas of Fact 1.
func TestFact1Parameters(t *testing.T) {
	cases := []struct {
		m, n int
		N, M uint64
	}{
		{1, 3, 63, 84},
		{1, 5, 1023, 5456},
		{1, 7, 16383, 349504},
		{1, 9, 262143, 22369536},
		{2, 3, 1365, 4368},
	}
	for _, c := range cases {
		s := newScheme(t, c.m, c.n)
		if s.NumModules != c.N {
			t.Errorf("q=%d n=%d: N = %d, want %d", s.Q, c.n, s.NumModules, c.N)
		}
		if s.NumVariables != c.M {
			t.Errorf("q=%d n=%d: M = %d, want %d", s.Q, c.n, s.NumVariables, c.M)
		}
		if s.Copies != int(s.Q)+1 || s.Majority != int(s.Q)/2+1 {
			t.Errorf("q=%d: copies=%d majority=%d", s.Q, s.Copies, s.Majority)
		}
		// Edge-count consistency: M(q+1) = N·q^{n-1}.
		if s.NumVariables*uint64(s.Q+1) != s.NumModules*uint64(s.ModuleSize) {
			t.Errorf("q=%d n=%d: edge counts disagree", s.Q, c.n)
		}
	}
}

// TestModuleIndexRoundTrip verifies bijection 2 (module ↔ f(s,t)).
func TestModuleIndexRoundTrip(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 3}, {1, 5}, {2, 3}} {
		s := newScheme(t, c.m, c.n)
		for j := uint64(0); j < s.NumModules; j++ {
			if got := s.ModuleIndex(s.ModuleMat(j)); got != j {
				t.Fatalf("q=%d n=%d: ModuleIndex(ModuleMat(%d)) = %d", s.Q, c.n, j, got)
			}
		}
		// Representative independence: multiplying by H_{n-1} elements on the
		// right leaves the index unchanged.
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 500; i++ {
			j := uint64(rng.Intn(int(s.NumModules)))
			b := s.ModuleMat(j)
			a := uint32(1 + rng.Intn(int(s.Q-1))) // a ∈ F_q^*
			al := uint32(rng.Intn(int(s.F.Order)))
			h := s.G.MustMake(a, al, 0, 1)
			if got := s.ModuleIndex(s.G.Mul(b, h)); got != j {
				t.Fatalf("module index not representative-independent at j=%d", j)
			}
		}
	}
}

// TestLemma1Degrees: every variable has exactly q+1 copies in q+1 distinct
// modules, and the copy set is independent of the coset representative.
func TestLemma1Degrees(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 3}, {1, 5}, {2, 3}} {
		s := newScheme(t, c.m, c.n)
		idx := NewEnumeratedIndexer(s)
		rng := rand.New(rand.NewSource(17))
		h0 := s.G.H0Elements()
		step := idx.M()/200 + 1 // sample for the bigger instances
		for i := uint64(0); i < idx.M(); i += step {
			a := idx.Mat(i)
			mods := s.VarModules(nil, a)
			if len(mods) != s.Copies {
				t.Fatalf("variable %d has %d copies", i, len(mods))
			}
			set := make(map[uint64]bool, len(mods))
			for _, j := range mods {
				set[j] = true
			}
			if len(set) != s.Copies {
				t.Fatalf("variable %d: copies land in %d < q+1 distinct modules", i, len(set))
			}
			// Representative independence of the module *set*.
			ar := s.G.Mul(a, h0[rng.Intn(len(h0))])
			for _, j := range s.VarModules(nil, ar) {
				if !set[j] {
					t.Fatalf("variable %d: module set changed under representative change", i)
				}
			}
		}
	}
}

// TestBijection3RoundTrip: offset k of module j holds the variable
// C_k^j = B_j·(1 p_k; 0 1), and Offset() inverts this for every edge.
func TestBijection3RoundTrip(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 3}, {2, 3}} {
		s := newScheme(t, c.m, c.n)
		h0 := s.G.H0Elements()
		rng := rand.New(rand.NewSource(23))
		for j := uint64(0); j < s.NumModules; j++ {
			seen := make(map[pgl.Mat]bool)
			for k := uint32(0); k < s.ModuleSize; k++ {
				v := s.ModuleVarMat(j, k)
				key := s.VarKey(v)
				if seen[key] {
					t.Fatalf("module %d stores a variable twice", j)
				}
				seen[key] = true
				got, err := s.Offset(v, j)
				if err != nil {
					t.Fatalf("Offset(ModuleVarMat(%d,%d)): %v", j, k, err)
				}
				if got != k {
					t.Fatalf("Offset roundtrip: module %d offset %d -> %d", j, k, got)
				}
				// Variable-representative independence of the offset.
				vr := s.G.Mul(v, h0[rng.Intn(len(h0))])
				if got2, err := s.Offset(vr, j); err != nil || got2 != k {
					t.Fatalf("Offset not representative-independent at (%d,%d)", j, k)
				}
			}
		}
	}
}

// TestOffsetRejectsNonEdge: Offset errors for (variable, module) pairs that
// are not edges of G.
func TestOffsetRejectsNonEdge(t *testing.T) {
	s := newScheme(t, 1, 3)
	idx := NewEnumeratedIndexer(s)
	for i := uint64(0); i < idx.M(); i++ {
		a := idx.Mat(i)
		adj := make(map[uint64]bool)
		for _, j := range s.VarModules(nil, a) {
			adj[j] = true
		}
		for j := uint64(0); j < s.NumModules; j++ {
			_, err := s.Offset(a, j)
			if adj[j] && err != nil {
				t.Fatalf("Offset failed on edge (%d,%d): %v", i, j, err)
			}
			if !adj[j] && err == nil {
				t.Fatalf("Offset accepted non-edge (%d,%d)", i, j)
			}
		}
	}
}

// TestCopyLocationConsistency: CopyLocation and ModuleVarMat agree on every
// copy of every variable.
func TestCopyLocationConsistency(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 3}, {1, 5}, {2, 3}} {
		s := newScheme(t, c.m, c.n)
		idx := NewEnumeratedIndexer(s)
		step := idx.M()/500 + 1
		for i := uint64(0); i < idx.M(); i += step {
			a := idx.Mat(i)
			for cc := 0; cc < s.Copies; cc++ {
				j, k := s.CopyLocation(a, cc)
				if j >= s.NumModules || k >= s.ModuleSize {
					t.Fatalf("CopyLocation out of range: (%d,%d)", j, k)
				}
				back := s.VarKey(s.ModuleVarMat(j, k))
				if back != s.VarKey(a) {
					t.Fatalf("variable %d copy %d: address (%d,%d) holds someone else", i, cc, j, k)
				}
			}
		}
	}
}

// TestTheorem2 verifies |Γ(v₁) ∩ Γ(v₂)| ≤ 1 for all pairs of distinct
// variables (exhaustively on small instances).
func TestTheorem2(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 3}, {2, 3}} {
		s := newScheme(t, c.m, c.n)
		idx := NewEnumeratedIndexer(s)
		mods := make([][]uint64, idx.M())
		for i := uint64(0); i < idx.M(); i++ {
			mods[i] = s.VarModules(nil, idx.Mat(i))
		}
		for i := range mods {
			si := make(map[uint64]bool, len(mods[i]))
			for _, j := range mods[i] {
				si[j] = true
			}
			for l := i + 1; l < len(mods); l++ {
				inter := 0
				for _, j := range mods[l] {
					if si[j] {
						inter++
					}
				}
				if inter > 1 {
					t.Fatalf("q=%d n=%d: variables %d,%d share %d modules", s.Q, c.n, i, l, inter)
				}
			}
		}
	}
}

// gamma2 computes Γ²(u) = Γ(Γ(u)) − u as a module-index set.
func gamma2(s *Scheme, j uint64) map[uint64]bool {
	out := make(map[uint64]bool)
	for k := uint32(0); k < s.ModuleSize; k++ {
		v := s.ModuleVarMat(j, k)
		for _, j2 := range s.VarModules(nil, v) {
			if j2 != j {
				out[j2] = true
			}
		}
	}
	return out
}

// TestLemma3Gamma2Size: |Γ²(u)| = q^n (Lemma 3: the maps (δ 1; 1 0) for
// δ ∈ F_{q^n} give distinct modules).
func TestLemma3Gamma2Size(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 3}, {2, 3}} {
		s := newScheme(t, c.m, c.n)
		for _, j := range []uint64{0, 1, s.NumModules / 2, s.NumModules - 1} {
			g2 := gamma2(s, j)
			if uint32(len(g2)) != s.F.Order {
				t.Fatalf("q=%d n=%d: |Γ²(u_%d)| = %d, want q^n = %d",
					s.Q, c.n, j, len(g2), s.F.Order)
			}
		}
	}
}

// TestTheorem3 verifies |Γ²(u₁) ∩ Γ²(u₂)| ≤ q−1 for all module pairs.
func TestTheorem3(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 3}, {2, 3}} {
		s := newScheme(t, c.m, c.n)
		g2 := make([]map[uint64]bool, s.NumModules)
		for j := uint64(0); j < s.NumModules; j++ {
			g2[j] = gamma2(s, j)
		}
		maxInter := 0
		for a := uint64(0); a < s.NumModules; a++ {
			for b := a + 1; b < s.NumModules; b++ {
				inter := 0
				for j := range g2[b] {
					if g2[a][j] {
						inter++
					}
				}
				if inter > int(s.Q)-1 {
					t.Fatalf("q=%d n=%d: |Γ²(u_%d)∩Γ²(u_%d)| = %d > q−1",
						s.Q, c.n, a, b, inter)
				}
				if inter > maxInter {
					maxInter = inter
				}
			}
		}
		// The bound is tight (CASE 2 of the proof achieves q−1).
		if maxInter != int(s.Q)-1 {
			t.Errorf("q=%d n=%d: max Γ² intersection %d; expected the bound q−1=%d to be attained",
				s.Q, c.n, maxInter, s.Q-1)
		}
	}
}

// TestTheorem4Expansion samples variable sets and checks
// |Γ(S)| ≥ |S|^{2/3}·q / 2^{1/3}.
func TestTheorem4Expansion(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 3}, {1, 5}, {2, 3}} {
		s := newScheme(t, c.m, c.n)
		idx := NewEnumeratedIndexer(s)
		rng := rand.New(rand.NewSource(31))
		check := func(set map[uint64]bool, label string) {
			t.Helper()
			mods := make(map[uint64]bool)
			for i := range set {
				for _, j := range s.VarModules(nil, idx.Mat(i)) {
					mods[j] = true
				}
			}
			lower := pow23(float64(len(set))) * float64(s.Q) / cbrt2
			if float64(len(mods)) < lower {
				t.Fatalf("q=%d n=%d %s: |Γ(S)| = %d < bound %.2f (|S|=%d)",
					s.Q, c.n, label, len(mods), lower, len(set))
			}
		}
		for _, size := range []int{1, 2, 5, 10, 40} {
			if uint64(size) > idx.M() {
				continue
			}
			set := make(map[uint64]bool)
			for len(set) < size {
				set[uint64(rng.Intn(int(idx.M())))] = true
			}
			check(set, "random")
		}
		// Adversarial: all variables of one module (the worst locality).
		set := make(map[uint64]bool)
		for k := uint32(0); k < s.ModuleSize; k++ {
			i, ok := idx.Index(s.VarKey(s.ModuleVarMat(0, k)))
			if !ok {
				t.Fatal("module variable missing from index")
			}
			set[i] = true
		}
		check(set, "single-module")
	}
}

const cbrt2 = 1.2599210498948732

func pow23(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Cbrt(x * x)
}
