package core

import (
	"testing"

	"detshmem/internal/pgl"
)

// batchSchemes covers both offsetByKey branches (t = −1 and t ≥ 0 modules)
// across q ∈ {2, 4, 8} and both indexer families.
var batchSchemes = []struct{ m, n int }{
	{1, 3}, {1, 4}, {1, 5}, {2, 3}, {3, 3},
}

// TestResolveCopiesMatchesCopyLocation pins the batched kernel to the scalar
// path over every variable of each small scheme.
func TestResolveCopiesMatchesCopyLocation(t *testing.T) {
	for _, p := range batchSchemes {
		s := newScheme(t, p.m, p.n)
		idx, err := s.NewIndexer()
		if err != nil {
			t.Fatal(err)
		}
		total := idx.M()
		if total > 4096 {
			total = 4096
		}
		mats := make([]pgl.Mat, total)
		for i := range mats {
			mats[i] = idx.Mat(uint64(i))
		}
		mods := make([]uint64, len(mats)*s.Copies)
		offs := make([]uint32, len(mats)*s.Copies)
		s.ResolveCopies(mats, s.Copies, mods, offs)
		for i, a := range mats {
			for c := 0; c < s.Copies; c++ {
				wantMod, wantOff := s.CopyLocation(a, c)
				pos := i*s.Copies + c
				if mods[pos] != wantMod || offs[pos] != wantOff {
					t.Fatalf("q=%d n=%d var %d copy %d: batch (%d, %d), scalar (%d, %d)",
						s.Q, s.Deg, i, c, mods[pos], offs[pos], wantMod, wantOff)
				}
			}
		}
	}
}

// TestResolveModulesMatchesVarModules pins the modules-only kernel (the
// compact-indexer build path) to VarModules.
func TestResolveModulesMatchesVarModules(t *testing.T) {
	for _, p := range batchSchemes {
		s := newScheme(t, p.m, p.n)
		idx, err := s.NewIndexer()
		if err != nil {
			t.Fatal(err)
		}
		total := idx.M()
		if total > 2048 {
			total = 2048
		}
		mats := make([]pgl.Mat, total)
		for i := range mats {
			mats[i] = idx.Mat(uint64(i))
		}
		mods := make([]uint64, len(mats)*s.Copies)
		s.ResolveModules(mats, s.Copies, mods)
		var want []uint64
		for i, a := range mats {
			want = s.VarModules(want[:0], a)
			for c, w := range want {
				if got := mods[i*s.Copies+c]; got != w {
					t.Fatalf("q=%d n=%d var %d copy %d: batch module %d, scalar %d", s.Q, s.Deg, i, c, got, w)
				}
			}
		}
	}
}

// TestResolveCopiesPartial checks the copies < q+1 form (what a
// majority-only resolver would request).
func TestResolveCopiesPartial(t *testing.T) {
	s := newScheme(t, 2, 3)
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	mats := []pgl.Mat{idx.Mat(0), idx.Mat(1), idx.Mat(idx.M() - 1)}
	copies := s.Majority
	mods := make([]uint64, len(mats)*copies)
	offs := make([]uint32, len(mats)*copies)
	s.ResolveCopies(mats, copies, mods, offs)
	for i, a := range mats {
		for c := 0; c < copies; c++ {
			wantMod, wantOff := s.CopyLocation(a, c)
			if mods[i*copies+c] != wantMod || offs[i*copies+c] != wantOff {
				t.Fatalf("var %d copy %d mismatch", i, c)
			}
		}
	}
}

func TestResolveCopiesRejectsBadCount(t *testing.T) {
	s := newScheme(t, 1, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for copies > q+1")
		}
	}()
	s.ResolveCopies([]pgl.Mat{s.G.Identity()}, s.Copies+1, make([]uint64, s.Copies+1), make([]uint32, s.Copies+1))
}

func TestResolveCopiesZeroAlloc(t *testing.T) {
	s := newScheme(t, 1, 5)
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	mats := make([]pgl.Mat, 257) // force multiple internal blocks
	for i := range mats {
		mats[i] = idx.Mat(uint64(i) * 31 % idx.M())
	}
	mods := make([]uint64, len(mats)*s.Copies)
	offs := make([]uint32, len(mats)*s.Copies)
	if n := testing.AllocsPerRun(20, func() {
		s.ResolveCopies(mats, s.Copies, mods, offs)
	}); n != 0 {
		t.Errorf("ResolveCopies allocates %v times per call, want 0", n)
	}
}
