package core

import (
	"math/rand"
	"testing"
)

// The q = 8 instance (nine copies, majority five) exercises the scheme-level
// machinery at a third base-field size. The enumerated indexer is too
// expensive to build here (CosetKeyH0 costs q³−q group products per coset),
// so these tests stay at the coset/address layer, which is all the protocol
// actually needs per access.

func TestQ8Parameters(t *testing.T) {
	s := newScheme(t, 3, 3) // q=8, n=3
	if s.NumModules != 37449 {
		t.Fatalf("N = %d, want 37449", s.NumModules)
	}
	if s.NumVariables != 266304 {
		t.Fatalf("M = %d, want 266304", s.NumVariables)
	}
	if s.Copies != 9 || s.Majority != 5 || s.ModuleSize != 64 {
		t.Fatalf("copies=%d majority=%d moduleSize=%d", s.Copies, s.Majority, s.ModuleSize)
	}
	if s.NumVariables*9 != s.NumModules*64 {
		t.Fatal("edge counts disagree")
	}
}

func TestQ8ModuleIndexRoundTrip(t *testing.T) {
	s := newScheme(t, 3, 3)
	for j := uint64(0); j < s.NumModules; j += 7 {
		if got := s.ModuleIndex(s.ModuleMat(j)); got != j {
			t.Fatalf("ModuleIndex(ModuleMat(%d)) = %d", j, got)
		}
	}
}

func TestQ8EdgeRoundTrips(t *testing.T) {
	s := newScheme(t, 3, 3)
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 3000; trial++ {
		j := uint64(rng.Int63n(int64(s.NumModules)))
		k := uint32(rng.Intn(int(s.ModuleSize)))
		v := s.ModuleVarMat(j, k)
		// Offset inversion.
		got, err := s.Offset(v, j)
		if err != nil || got != k {
			t.Fatalf("Offset roundtrip (%d,%d) -> %d, %v", j, k, got, err)
		}
		// Lemma 1 degree and copy-location consistency.
		mods := s.VarModules(nil, v)
		set := make(map[uint64]bool)
		found := false
		for c, m := range mods {
			set[m] = true
			if m == j {
				found = true
			}
			cm, co := s.CopyLocation(v, c)
			if cm != m {
				t.Fatalf("CopyLocation module mismatch at copy %d", c)
			}
			if s.VarKey(s.ModuleVarMat(cm, co)) != s.VarKey(v) {
				t.Fatalf("copy %d address points elsewhere", c)
			}
		}
		if len(set) != 9 {
			t.Fatalf("variable has %d distinct modules, want q+1=9", len(set))
		}
		if !found {
			t.Fatal("Lemma 2 / Lemma 1 duality broken: source module missing")
		}
	}
}

// TestQ8Theorem2Sampled: pairwise intersections ≤ 1 on sampled variable
// pairs drawn through module enumeration.
func TestQ8Theorem2Sampled(t *testing.T) {
	s := newScheme(t, 3, 3)
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 1500; trial++ {
		v1 := s.ModuleVarMat(uint64(rng.Int63n(int64(s.NumModules))), uint32(rng.Intn(int(s.ModuleSize))))
		v2 := s.ModuleVarMat(uint64(rng.Int63n(int64(s.NumModules))), uint32(rng.Intn(int(s.ModuleSize))))
		if s.VarKey(v1) == s.VarKey(v2) {
			continue
		}
		m1 := s.VarModules(nil, v1)
		m2 := s.VarModules(nil, v2)
		inter := 0
		for _, x := range m1 {
			for _, y := range m2 {
				if x == y {
					inter++
				}
			}
		}
		if inter > 1 {
			t.Fatalf("Theorem 2 violated at q=8: intersection %d", inter)
		}
	}
}
