package core

import "testing"

// TestCompactMatchesEnumerated checks that the compact indexer is a bijection
// onto the same variable set as the enumerated one (orderings differ — the
// compact order is by minimum-module edge, the enumerated by canonical key —
// but the sets of cosets must coincide, and each indexer must invert its own
// Mat).
func TestCompactMatchesEnumerated(t *testing.T) {
	for _, p := range []struct{ m, n int }{{1, 4}, {2, 3}} {
		s := newScheme(t, p.m, p.n)
		en := NewEnumeratedIndexer(s)
		cp := NewCompactIndexer(s)
		if cp.M() != en.M() || cp.M() != s.NumVariables {
			t.Fatalf("q=%d n=%d: compact M=%d, enumerated M=%d, scheme M=%d",
				s.Q, s.Deg, cp.M(), en.M(), s.NumVariables)
		}
		seen := make([]bool, en.M())
		for i := uint64(0); i < cp.M(); i++ {
			a := cp.Mat(i)
			// Round-trip through the compact inverse.
			j, ok := cp.Index(a)
			if !ok || j != i {
				t.Fatalf("q=%d n=%d: compact round-trip of %d gave (%d, %v)", s.Q, s.Deg, i, j, ok)
			}
			// The coset must be a variable the enumerated indexer knows, each
			// exactly once (so the compact order is a permutation of it).
			e, ok := en.Index(a)
			if !ok {
				t.Fatalf("q=%d n=%d: compact variable %d unknown to enumerated indexer", s.Q, s.Deg, i)
			}
			if seen[e] {
				t.Fatalf("q=%d n=%d: enumerated variable %d hit twice", s.Q, s.Deg, e)
			}
			seen[e] = true
		}
	}
}

// TestCompactIndexAnyRepresentative verifies Index accepts non-canonical
// representatives: every copy-module traversal of a variable's coset must
// resolve to the same index.
func TestCompactIndexAnyRepresentative(t *testing.T) {
	s := newScheme(t, 2, 3)
	cp := NewCompactIndexer(s)
	for i := uint64(0); i < cp.M(); i += 97 {
		a := cp.Mat(i)
		for _, h := range s.G.H0Elements()[:5] {
			j, ok := cp.Index(s.G.Mul(a, h))
			if !ok || j != i {
				t.Fatalf("variable %d via representative a·h: got (%d, %v)", i, j, ok)
			}
		}
	}
}

// TestCompactIndexerQ8 builds the q=8 n=3 bijection — the configuration the
// enumerated indexer cannot afford (O(q³) canonicalization per edge) — and
// spot-checks round-trips plus the copy/location contract.
func TestCompactIndexerQ8(t *testing.T) {
	if testing.Short() {
		t.Skip("q=8 n=3 build in short mode")
	}
	s := newScheme(t, 3, 3)
	cp := NewCompactIndexer(s)
	if cp.M() != s.NumVariables {
		t.Fatalf("M=%d, want %d", cp.M(), s.NumVariables)
	}
	for i := uint64(0); i < cp.M(); i += 1237 {
		a := cp.Mat(i)
		if j, ok := cp.Index(a); !ok || j != i {
			t.Fatalf("round-trip of %d gave (%d, %v)", i, j, ok)
		}
		// Copies must land in q+1 pairwise-distinct modules (Lemma 1).
		seen := make(map[uint64]bool, s.Copies)
		for c := 0; c < s.Copies; c++ {
			mod, off := s.CopyLocation(a, c)
			if off >= s.ModuleSize || mod >= s.NumModules {
				t.Fatalf("variable %d copy %d out of range: (%d, %d)", i, c, mod, off)
			}
			if seen[mod] {
				t.Fatalf("variable %d: module %d holds two copies", i, mod)
			}
			seen[mod] = true
		}
	}
}
