package core

import (
	"sync"
	"testing"
)

// Shared fixtures for fuzz targets (built once; fuzzing re-enters the
// function many times).
var (
	fuzzOnce sync.Once
	fuzzS    *Scheme
	fuzzEx   *ExplicitIndexer
)

func fuzzSetup(t testing.TB) (*Scheme, *ExplicitIndexer) {
	fuzzOnce.Do(func() {
		s, err := New(1, 7)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := NewExplicitIndexer(s)
		if err != nil {
			t.Fatal(err)
		}
		fuzzS, fuzzEx = s, ex
	})
	return fuzzS, fuzzEx
}

// FuzzExplicitIndexRoundTrip: for any variable index, decoding to a matrix
// and re-encoding must return the same index; all copy addresses must be in
// range and mutually consistent.
func FuzzExplicitIndexRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(83))
	f.Add(uint64(349503))
	f.Fuzz(func(t *testing.T, i uint64) {
		s, ex := fuzzSetup(t)
		i %= ex.M()
		a := ex.Mat(i)
		back, ok := ex.Index(a)
		if !ok || back != i {
			t.Fatalf("Index(Mat(%d)) = %d,%v", i, back, ok)
		}
		for c := 0; c < s.Copies; c++ {
			mod, off := s.CopyLocation(a, c)
			if mod >= s.NumModules || off >= s.ModuleSize {
				t.Fatalf("copy %d of %d out of range: (%d,%d)", c, i, mod, off)
			}
			if s.VarKey(s.ModuleVarMat(mod, off)) != s.VarKey(a) {
				t.Fatalf("copy %d of %d points to a different variable", c, i)
			}
		}
	})
}

// FuzzModuleIndexRoundTrip: module index ↔ representative for arbitrary
// module ids, plus offset decoding for arbitrary slots.
func FuzzModuleIndexRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint32(0))
	f.Add(uint64(16382), uint32(63))
	f.Fuzz(func(t *testing.T, j uint64, k uint32) {
		s, _ := fuzzSetup(t)
		j %= s.NumModules
		k %= s.ModuleSize
		if got := s.ModuleIndex(s.ModuleMat(j)); got != j {
			t.Fatalf("ModuleIndex(ModuleMat(%d)) = %d", j, got)
		}
		v := s.ModuleVarMat(j, k)
		off, err := s.Offset(v, j)
		if err != nil {
			t.Fatalf("Offset(ModuleVarMat(%d,%d)): %v", j, k, err)
		}
		if off != k {
			t.Fatalf("offset roundtrip: (%d,%d) -> %d", j, k, off)
		}
	})
}
