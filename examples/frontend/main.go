// Example frontend: many asynchronous clients over the synchronous batch
// protocol via the combining frontend. Eight goroutines hammer a small hot
// set of shared counters; the frontend coalesces their operations into
// EREW-legal batches (distinct variables only) and the combining statistics
// show how many client ops never became protocol requests at all.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"detshmem/internal/core"
	"detshmem/internal/frontend"
	"detshmem/internal/protocol"
)

func main() {
	// q=2, n=3: N=63 modules, M=84 variables, 3 copies, majority 2.
	scheme, err := core.New(1, 3)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := scheme.NewIndexer()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := protocol.NewSystem(scheme, idx, protocol.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fe, err := frontend.New(sys, frontend.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Each client pipelines a window of asynchronous operations — the
	// submit-then-wait pattern that lets the dispatcher see concurrent ops
	// and combine them (fully synchronous clients would serialize into
	// one-op batches).
	const clients, opsPerClient, window, hotVars = 8, 500, 16, 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			pending := make([]*frontend.Future, 0, window)
			drain := func() {
				for _, fut := range pending {
					if _, err := fut.Wait(); err != nil {
						log.Fatal(err)
					}
				}
				pending = pending[:0]
			}
			for i := 0; i < opsPerClient; i++ {
				v := uint64(rng.Intn(hotVars))
				var fut *frontend.Future
				var err error
				if i%2 == 0 {
					fut, err = fe.WriteAsync(v, uint64(c)<<16|uint64(i))
				} else {
					fut, err = fe.ReadAsync(v)
				}
				if err != nil {
					log.Fatal(err)
				}
				if pending = append(pending, fut); len(pending) == window {
					drain()
				}
			}
			drain()
		}(c)
	}
	wg.Wait()

	for v := uint64(0); v < hotVars; v++ {
		val, err := fe.Read(v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("var %d: last committed value %d (client %d, op %d)\n",
			v, val, val>>16, val&0xffff)
	}
	if err := fe.Close(); err != nil {
		log.Fatal(err)
	}

	s := fe.Stats()
	fmt.Printf("\n%d client ops -> %d protocol requests in %d batches (combining rate %.1f%%)\n",
		s.OpsIn, s.RequestsOut, s.Batches, 100*s.CombiningRate())
	fmt.Printf("read sharing %d, write coalescing %d, read-after-write forwards %d\n",
		s.CombinedReads, s.CoalescedWrites, s.ForwardedReads)
	fmt.Printf("protocol cost: %d MPC rounds total, max per-batch Φ = %d\n",
		s.TotalRounds, s.MaxPhi)
}
