// faulttolerance: the majority rule the scheme borrows from Thomas'
// consensus protocol masks module failures for free. With q = 2 every
// variable has 3 copies in 3 distinct modules and needs only 2 of them, so
// one crashed module is invisible — and by Theorem 2, crashing any TWO
// modules can strand at most one variable in the whole machine.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"errors"
	"fmt"
	"log"

	"detshmem/internal/core"
	"detshmem/internal/mpc"
	"detshmem/internal/protocol"
)

func main() {
	scheme, err := core.New(1, 5) // N = 1023, M = 5456
	if err != nil {
		log.Fatal(err)
	}
	idx, err := scheme.NewIndexer()
	if err != nil {
		log.Fatal(err)
	}

	newSys := func(failed []uint64) *protocol.System {
		sys, err := protocol.NewSystem(scheme, idx, protocol.Config{
			MaxIterationsPerPhase: 4096,
			NewMachine: func(cfg mpc.Config) (protocol.Machine, error) {
				return mpc.NewFailing(cfg, failed)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}

	n := int(scheme.NumModules)
	vars := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range vars {
		vars[i] = uint64(i)
		vals[i] = uint64(i) + 1000
	}

	// One failed module: the full-machine batch sails through.
	sys := newSys([]uint64{511})
	if _, err := sys.WriteBatch(vars, vals); err != nil {
		log.Fatalf("write with one failed module: %v", err)
	}
	got, _, err := sys.ReadBatch(vars)
	if err != nil {
		log.Fatalf("read with one failed module: %v", err)
	}
	for i := range got {
		if got[i] != vals[i] {
			log.Fatalf("mismatch at %d", i)
		}
	}
	fmt.Printf("module 511 crashed: all %d variables still written and read correctly\n", n)

	// Kill every module holding variable 42's copies: exactly that variable
	// is stranded, everyone else survives.
	victim := uint64(42)
	failed := scheme.VarModules(nil, idx.Mat(victim))
	fmt.Printf("\nnow crashing variable %d's own modules %v…\n", victim, failed)
	sys = newSys(failed)
	met, err := sys.WriteBatch(vars, vals)
	if !errors.Is(err, protocol.ErrIncomplete) {
		log.Fatalf("expected ErrIncomplete, got %v", err)
	}
	fmt.Printf("protocol reports %d stranded request(s): ", len(met.Unfinished))
	for _, u := range met.Unfinished {
		fmt.Printf("variable %d ", vars[u])
	}
	fmt.Println()
	fmt.Println("(three crashed modules strand only the variables whose full copy set")
	fmt.Println(" they cover — Theorem 2 guarantees different variables share at most")
	fmt.Println(" one module, so such coincidences are vanishingly rare)")
}
