// vmdemo: run bytecode PRAM programs on the deterministic shared memory.
// The VM executes a lockstep instruction stream per processor; every shared
// read/write instruction becomes one MPC batch through the memory
// organization — a miniature of the PRAM-simulation stack the granularity
// problem exists for.
//
// Run with: go run ./examples/vmdemo
package main

import (
	"fmt"
	"log"

	"detshmem/internal/core"
	"detshmem/internal/pram"
	"detshmem/internal/pramvm"
	"detshmem/internal/protocol"
)

func main() {
	scheme, err := core.New(1, 5)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := scheme.NewIndexer()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := protocol.NewSystem(scheme, idx, protocol.Config{})
	if err != nil {
		log.Fatal(err)
	}
	mem := pram.New(sys)

	const n = 256
	vm, err := pramvm.New(mem, n, 24)
	if err != nil {
		log.Fatal(err)
	}

	// Shared layout: array at 0..n-1, doubling counter at 500, flag at 501,
	// max cell at 502, histogram buckets at 600+.
	addrs := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range addrs {
		addrs[i] = uint64(i)
		vals[i] = uint64(i%7 + 1)
	}
	if err := mem.Write(addrs, vals); err != nil {
		log.Fatal(err)
	}

	// Parallel maximum via one CRCW-Max instruction.
	maxProg, _ := pramvm.MaxProgram(0, 502)
	if _, err := vm.Run(maxProg); err != nil {
		log.Fatal(err)
	}
	got, err := mem.Read([]uint64{502})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CRCW max of %d cells: %d (one write batch)\n", n, got[0])

	// Histogram via one Fetch&Add-style combining instruction.
	histProg, _ := pramvm.HistogramProgram(0, 600)
	if _, err := vm.Run(histProg); err != nil {
		log.Fatal(err)
	}
	buckets := make([]uint64, 8)
	for i := range buckets {
		buckets[i] = 600 + uint64(i)
	}
	counts, err := mem.Read(buckets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("histogram of values 0..7: %v\n", counts)

	// Prefix sums via the bytecode doubling program under host-driven
	// fixpoint iteration.
	if err := mem.Write([]uint64{500}, []uint64{1}); err != nil {
		log.Fatal(err)
	}
	psProg, _ := pramvm.PrefixSumProgram(0, 500, 501, n)
	passes, err := vm.RunUntil(psProg, 501, 12)
	if err != nil {
		log.Fatal(err)
	}
	sums, err := mem.Read(addrs)
	if err != nil {
		log.Fatal(err)
	}
	want := uint64(0)
	for i := range vals {
		want += vals[i]
		if sums[i] != want {
			log.Fatalf("prefix sum wrong at %d", i)
		}
	}
	fmt.Printf("prefix sums over %d cells in %d doubling passes — verified\n", n, passes)
	fmt.Printf("total PRAM steps %d, total MPC rounds %d\n", mem.Steps, mem.Rounds)
}
