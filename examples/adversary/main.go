// adversary: demonstrate why deterministic redundancy matters. The same
// adversarial batch — all variables mapped to one module under a
// no-redundancy layout — is served by the single-copy scheme, the
// Mehlhorn–Vishkin write-all scheme and the Pietracaprina–Preparata scheme,
// all under identical MPC accounting.
//
// Run with: go run ./examples/adversary
package main

import (
	"fmt"
	"log"

	"detshmem/internal/baseline"
	"detshmem/internal/core"
	"detshmem/internal/protocol"
	"detshmem/internal/workload"
)

func main() {
	scheme, err := core.New(1, 5) // N = 1023, M = 5456
	if err != nil {
		log.Fatal(err)
	}
	idx, err := scheme.NewIndexer()
	if err != nil {
		log.Fatal(err)
	}
	N, M := scheme.NumModules, scheme.NumVariables

	single, err := baseline.NewSingleCopy(N, M, baseline.PlaceInterleaved, 0)
	if err != nil {
		log.Fatal(err)
	}
	mv, err := baseline.NewMV(N, M, 2)
	if err != nil {
		log.Fatal(err)
	}
	pp := protocol.NewCoreMapper(scheme, idx)

	// The adversarial batch: variables ≡ 0 (mod N). Under the interleaved
	// single-copy layout they all live in module 0; under MV their first
	// digit is 0, so every write-all must hit module 0.
	batch := workload.Stride(M, int(M/N), N)
	fmt.Printf("adversarial batch: %d variables, all congruent 0 mod N\n\n", len(batch))

	fmt.Printf("%-20s %8s %8s %10s\n", "scheme", "copies", "op", "MPC rounds")
	for _, m := range []protocol.Mapper{single, mv, pp} {
		for _, op := range []protocol.Op{protocol.Write, protocol.Read} {
			sys, err := protocol.NewGenericSystem(m, protocol.Config{})
			if err != nil {
				log.Fatal(err)
			}
			reqs := make([]protocol.Request, len(batch))
			for i, v := range batch {
				reqs[i] = protocol.Request{Var: v, Op: op, Value: uint64(i)}
			}
			res, err := sys.Access(reqs)
			if err != nil {
				log.Fatal(err)
			}
			opName := "write"
			if op == protocol.Read {
				opName = "read"
			}
			fmt.Printf("%-20s %8d %8s %10d\n", m.Name(), m.Copies(), opName, res.Metrics.TotalRounds)
		}
	}
	fmt.Println("\nsingle-copy serializes entirely on module 0; MV reads escape via copy")
	fmt.Println("choice but MV writes serialize on the shared digit; the PP scheme's")
	fmt.Println("expander spreads every batch, reads and writes alike.")
}
