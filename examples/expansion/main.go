// expansion: measure the Theorem 4 expansion |Γ(S)| ≥ |S|^{2/3}·q/2^{1/3}
// directly on the graph, for random sets, locality-adversarial sets, and —
// on composite n — the subfield-structured sets that make the bound tight.
//
// Run with: go run ./examples/expansion
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"detshmem/internal/core"
	"detshmem/internal/workload"
)

func main() {
	scheme, err := core.New(1, 9) // composite n: the tightness case exists
	if err != nil {
		log.Fatal(err)
	}
	idx, err := scheme.NewIndexer()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("instance:", scheme.Params())
	fmt.Printf("%-16s %8s %10s %10s %7s\n", "set", "|S|", "|Γ(S)|", "floor", "ratio")

	measure := func(label string, vars []uint64) {
		mods := make(map[uint64]bool)
		var buf []uint64
		for _, v := range vars {
			buf = scheme.VarModules(buf[:0], idx.Mat(v))
			for _, j := range buf {
				mods[j] = true
			}
		}
		floor := math.Pow(float64(len(vars)), 2.0/3.0) * float64(scheme.Q) / math.Cbrt(2)
		fmt.Printf("%-16s %8d %10d %10.1f %7.2f\n",
			label, len(vars), len(mods), floor, float64(len(mods))/floor)
	}

	rng := rand.New(rand.NewSource(9))
	for _, size := range []int{64, 512, 4096} {
		measure("random", workload.DistinctRandom(rng, idx.M(), size))
		g, err := workload.GammaConcentrated(scheme, idx, 0, size)
		if err != nil {
			log.Fatal(err)
		}
		measure("Γ-concentrated", g)
	}

	// The embedded PGL₂(2³) cosets: 84 variables whose structure mirrors the
	// whole graph at scale n=3 — the paper notes such sets witness tightness
	// for composite n.
	sub, err := workload.SubfieldSet(scheme, idx, 3)
	if err != nil {
		log.Fatal(err)
	}
	measure("subfield d=3", sub)

	fmt.Println("\nthe ratio column stays >= 1 everywhere (Theorem 4); the subfield set")
	fmt.Println("sits closest to the floor — the structured sets the paper warns about.")
}
