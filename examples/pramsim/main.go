// pramsim: run PRAM algorithms — parallel prefix sum and list ranking —
// whose shared memory is served by the deterministic organization on the
// MPC. This is the paper's motivating application: simulating an idealized
// shared-memory machine on a machine with banked memory.
//
// Run with: go run ./examples/pramsim
package main

import (
	"fmt"
	"log"
	"math/rand"

	"detshmem/internal/core"
	"detshmem/internal/pram"
	"detshmem/internal/protocol"
)

func main() {
	scheme, err := core.New(1, 5)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := scheme.NewIndexer()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := protocol.NewSystem(scheme, idx, protocol.Config{})
	if err != nil {
		log.Fatal(err)
	}
	p := pram.New(sys)

	// --- Parallel prefix sum over 512 shared cells -----------------------
	const n = 512
	addrs := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range addrs {
		addrs[i] = uint64(i)
		vals[i] = uint64(i % 7)
	}
	if err := p.Write(addrs, vals); err != nil {
		log.Fatal(err)
	}
	steps, err := p.PrefixSum(0, n)
	if err != nil {
		log.Fatal(err)
	}
	got, err := p.Read(addrs)
	if err != nil {
		log.Fatal(err)
	}
	sum := uint64(0)
	for i := range vals {
		sum += vals[i]
		if got[i] != sum {
			log.Fatalf("prefix sum wrong at %d", i)
		}
	}
	fmt.Printf("prefix sum over %d cells: %d PRAM steps, %d MPC rounds total\n",
		n, steps, p.Rounds)

	// --- List ranking over a scrambled linked list -----------------------
	rng := rand.New(rand.NewSource(1))
	order := rng.Perm(n)
	next := make([]uint64, n)
	for k := 0; k < n-1; k++ {
		next[order[k]] = uint64(order[k+1])
	}
	next[order[n-1]] = uint64(order[n-1])
	base := uint64(1024)
	laddrs := make([]uint64, n)
	for i := range laddrs {
		laddrs[i] = base + uint64(i)
	}
	if err := p.Write(laddrs, next); err != nil {
		log.Fatal(err)
	}
	before := p.Rounds
	dist, err := p.ListRank(base, base+uint64(n), n)
	if err != nil {
		log.Fatal(err)
	}
	for k, node := range order {
		if dist[node] != uint64(n-1-k) {
			log.Fatalf("list rank wrong for node %d", node)
		}
	}
	fmt.Printf("list ranking over %d nodes: %d MPC rounds\n", n, p.Rounds-before)
	fmt.Printf("(every PRAM step became one distinct-variable batch on the MPC;\n")
	fmt.Printf(" concurrent reads were combined client-side)\n")
}
