// Quickstart: build a Pietracaprina–Preparata shared-memory instance, write
// a batch of variables, read them back, and inspect the access metrics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"detshmem/internal/core"
	"detshmem/internal/protocol"
)

func main() {
	// q = 2 (three copies per variable, majority 2), n = 5:
	// N = 1023 modules, M = 5456 variables.
	scheme, err := core.New(1, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("instance:", scheme.Params())

	// The indexer is the Section 4 bijection between variable indices and
	// cosets of PGL₂(2⁵)/H₀; for q=2 and odd n it is the explicit Theorem 8
	// construction (O(log N) per address, O(1) state).
	idx, err := scheme.NewIndexer()
	if err != nil {
		log.Fatal(err)
	}

	sys, err := protocol.NewSystem(scheme, idx, protocol.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Where does variable 42 physically live? q+1 = 3 copies in 3 modules.
	a := idx.Mat(42)
	fmt.Println("variable 42 is the coset of", a)
	for c := 0; c < scheme.Copies; c++ {
		mod, off := scheme.CopyLocation(a, c)
		fmt.Printf("  copy %d -> module %4d, offset %d\n", c, mod, off)
	}

	// Write a full batch of N distinct variables in one synchronous step.
	n := int(scheme.NumModules)
	vars := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range vars {
		vars[i] = uint64(i)
		vals[i] = uint64(i * i)
	}
	met, err := sys.WriteBatch(vars, vals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d variables: %d phases, Φ = %d iterations, %d total MPC rounds\n",
		n, met.Phases, met.MaxIterations, met.TotalRounds)
	fmt.Printf("(a single-module memory would have needed %d rounds)\n", n)

	// Read them back; the majority rule guarantees the freshest value even
	// though each write only touched 2 of the 3 copies.
	got, rmet, err := sys.ReadBatch(vars)
	if err != nil {
		log.Fatal(err)
	}
	for i := range got {
		if got[i] != vals[i] {
			log.Fatalf("read mismatch at %d: %d != %d", i, got[i], vals[i])
		}
	}
	fmt.Printf("read %d variables back correctly in %d MPC rounds\n", n, rmet.TotalRounds)
}
