module detshmem

go 1.23
