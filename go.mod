module detshmem

go 1.22
