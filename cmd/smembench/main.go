// Command smembench regenerates the experiment tables E1–E16 (the paper's
// analytical claims as measurements, plus the extensions). See DESIGN.md for
// the per-experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	smembench [-exp e1,e4,...] [-quick] [-seed N] [-json] [-jsonout FILE]
//
// With no -exp it runs everything in order. -json makes JSON-capable
// experiments (E16) also write machine-readable results, to BENCH_PR2.json
// by default (-jsonout overrides the path).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"detshmem/internal/experiments"
)

func main() {
	var (
		expFlag = flag.String("exp", "", "comma-separated experiment ids (e1..e16); empty = all")
		quick   = flag.Bool("quick", false, "shrink sweeps for a fast run")
		seed    = flag.Int64("seed", 0, "workload RNG seed (0 = default)")
		jsonOut = flag.Bool("json", false, "write machine-readable results where supported (e16)")
		jsonF   = flag.String("jsonout", "BENCH_PR2.json", "path for -json output")
	)
	flag.Parse()

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed}
	if *jsonOut {
		opts.JSONPath = *jsonF
	}
	ran := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", strings.ToUpper(r.ID), r.Title)
		start := time.Now()
		if err := r.Run(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; known ids:", *expFlag)
		for _, r := range experiments.All() {
			fmt.Fprintf(os.Stderr, " %s", r.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}
