// Command smembench regenerates the experiment tables E1–E17 (the paper's
// analytical claims as measurements, plus the extensions). See DESIGN.md for
// the per-experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	smembench [-exp e1,e4,...] [-quick] [-seed N] [-json] [-jsonout FILE]
//	          [-trace FILE] [-tracecap N] [-pprof ADDR]
//
// With no -exp it runs everything in order. -json makes JSON-capable
// experiments (E16) also write machine-readable results, to BENCH_PR2.json
// by default (-jsonout overrides the path).
//
// -trace attaches the obs ring-buffer tracer plus the cumulative collector
// to every experiment system and dumps the per-round trajectory as JSON:
// round index, live requests, granted copies, the per-module contention
// histogram, and barrier wait time, alongside the collector's batch-level
// totals. The dump is self-validating — smembench exits nonzero if the
// trace totals do not match the summed protocol metrics.
//
// -pprof serves net/http/pprof, expvar (/debug/vars), and the Prometheus
// text format (/metrics) on the given address for the duration of the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"strings"
	"time"

	"detshmem/internal/experiments"
	"detshmem/internal/obs"
)

// traceDump is the -trace output: the tracer's trajectory and exact totals,
// the collector's batch-level view of the same run, and the consistency
// verdict between them.
type traceDump struct {
	Totals     obs.TraceTotals  `json:"totals"`
	Dropped    uint64           `json:"dropped"`
	Collector  map[string]int64 `json:"collector"`
	Consistent bool             `json:"consistent"`
	Events     []obs.RoundEvent `json:"events"`
}

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment ids (e1..e17); empty = all")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast run")
		seed     = flag.Int64("seed", 0, "workload RNG seed (0 = default)")
		jsonOut  = flag.Bool("json", false, "write machine-readable results where supported (e16)")
		jsonF    = flag.String("jsonout", "BENCH_PR2.json", "path for -json output")
		traceF   = flag.String("trace", "", "capture per-round MPC events and write the JSON trajectory here")
		traceCap = flag.Int("tracecap", obs.DefaultTraceCap, "ring capacity for -trace (oldest events drop beyond it)")
		pprofA   = flag.String("pprof", "", "serve pprof + expvar + Prometheus /metrics on this address (e.g. :6060)")
	)
	flag.Parse()

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed}
	if *jsonOut {
		opts.JSONPath = *jsonF
	}

	collector := obs.NewCollector()
	var tracer *obs.Tracer
	if *traceF != "" {
		tracer = obs.NewTracer(*traceCap)
		opts.Recorder = obs.Multi(tracer, collector)
		opts.Observer = collector
	}
	if *pprofA != "" {
		if opts.Observer == nil {
			// No tracer requested: still aggregate, so /metrics has data.
			opts.Recorder = collector
			opts.Observer = collector
		}
		collector.PublishExpvar("detshmem")
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := collector.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		go func() {
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Printf("serving pprof/expvar/metrics on %s\n\n", *pprofA)
	}

	ran := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", strings.ToUpper(r.ID), r.Title)
		start := time.Now()
		if err := r.Run(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; known ids:", *expFlag)
		for _, r := range experiments.All() {
			fmt.Fprintf(os.Stderr, " %s", r.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	if tracer != nil {
		if err := writeTrace(*traceF, tracer, collector); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeTrace dumps the captured trajectory and verifies it against the
// collector's summed protocol metrics: every MPC round recorded by the
// tracer must be a round some batch's Metrics.TotalRounds accounted for,
// and every grant a Metrics.GrantedBids bid (instrumented systems install
// tracer and collector together, so the two views describe the same runs).
func writeTrace(path string, tracer *obs.Tracer, collector *obs.Collector) error {
	totals := tracer.Totals()
	dump := traceDump{
		Totals:    totals,
		Dropped:   tracer.Dropped(),
		Collector: collector.Snapshot(),
		Consistent: totals.Rounds == uint64(collector.Rounds.Load()) &&
			totals.Granted == uint64(collector.GrantedBids.Load()),
		Events: tracer.Events(),
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(dump)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	fmt.Printf("trace: %d rounds (%d buffered, %d dropped) -> %s\n",
		totals.Rounds, len(dump.Events), dump.Dropped, path)
	if !dump.Consistent {
		return fmt.Errorf("trace: totals diverge from protocol metrics: traced rounds=%d granted=%d, metrics rounds=%d granted=%d",
			totals.Rounds, totals.Granted, collector.Rounds.Load(), collector.GrantedBids.Load())
	}
	fmt.Printf("trace: totals consistent with protocol metrics (rounds=%d, granted=%d)\n",
		totals.Rounds, totals.Granted)
	return nil
}
