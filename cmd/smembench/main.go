// Command smembench regenerates the experiment tables E1–E24 (the paper's
// analytical claims as measurements, plus the extensions). See DESIGN.md for
// the per-experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	smembench [-exp e1,e4,...] [-quick] [-seed N] [-json] [-jsonout FILE]
//	          [-maxprocs P1,P2,...] [-shards S] [-pipeline] [-faults F]
//	          [-faultsched SCHED] [-trace FILE] [-tracecap N] [-pprof ADDR]
//	          [-transport inproc|tcp] [-servers A1,A2,...]
//	          [-resolver compiled|computed|hybrid]
//
// -maxprocs sweeps GOMAXPROCS: the selected experiments run once per listed
// value. With more than one value, each pass's JSON output gets a ".procsN"
// suffix before the extension so sweep points do not overwrite each other.
//
// With no -exp it runs everything in order. -json makes JSON-capable
// experiments also write machine-readable results, each to its own default
// path (E16 to BENCH_PR2.json, E18 to BENCH_PR4.json, E19 to
// BENCH_PR5.json); -jsonout overrides the path for all of them.
//
// -shards and -pipeline pin E18's sharded sweep to a single configuration
// (plus its S=1 classic baseline) instead of the full S sweep — the quick
// way to profile one execution-layer shape.
//
// -faults pins E19's failed-module sweep to {0, F} instead of the full
// ladder; -faultsched churn adds E19 cells with a rolling single-module
// fail/recover schedule running in the background while clients stream.
//
// -trace attaches the obs ring-buffer tracer plus the cumulative collector
// to every experiment system and dumps the per-round trajectory as JSON:
// round index, live requests, granted copies, the per-module contention
// histogram, and barrier wait time, alongside the collector's batch-level
// totals. Sharded experiments add a per-shard section: each configuration's
// queue-depth high-water mark and flush-cause breakdown, shard by shard.
// When the run includes E20, the dump also embeds the recorded per-client
// consistency traces under "consistency" — value-carrying read/write streams
// that cmd/consistencycheck can certify offline. The dump is
// self-validating — smembench exits nonzero if the trace totals do not match
// the summed protocol metrics.
//
// -pprof serves net/http/pprof, expvar (/debug/vars), and the Prometheus
// text format (/metrics) on the given address for the duration of the run.
//
// -transport restricts E22's transport cells ("inproc" or "tcp"); -servers
// points its TCP cells at external memserver processes instead of the
// in-process loopback cluster. With external servers E22's kill cell prints
// a marker line and waits for the harness (cmd/netcluster) to kill one
// server. E22 also records consistency traces, so -trace dumps from a TCP
// run certify the networked transport end to end.
//
// -resolver pins E23's strategy sweep to one address-resolution strategy
// ("compiled", "computed" or "hybrid") plus the live per-op baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"detshmem/internal/consistency"
	"detshmem/internal/experiments"
	"detshmem/internal/obs"
	"detshmem/internal/shard"
)

// traceDump is the -trace output: the tracer's trajectory and exact totals,
// the collector's batch-level view of the same run, the per-shard dispatcher
// breakdown for any sharded experiment cells, and the consistency verdict
// between tracer and collector.
type traceDump struct {
	Totals     obs.TraceTotals       `json:"totals"`
	Dropped    uint64                `json:"dropped"`
	Collector  map[string]int64      `json:"collector"`
	Shards     []shardTrace          `json:"shards,omitempty"`
	Consistent bool                  `json:"consistent"`
	Consist    *consistency.TraceSet `json:"consistency,omitempty"`
	Events     []obs.RoundEvent      `json:"events"`
}

// shardTrace is one sharded cell ("S=4/pipelined/zipf") from E18: the
// service-wide imbalance plus each shard dispatcher's queue-depth high-water
// mark and flush-cause breakdown.
type shardTrace struct {
	Label     string     `json:"label"`
	Imbalance float64    `json:"imbalance"`
	PerShard  []shardRow `json:"per_shard"`
}

type shardRow struct {
	Shard           int   `json:"shard"`
	OpsIn           int64 `json:"ops_in"`
	RequestsOut     int64 `json:"requests_out"`
	Batches         int   `json:"batches"`
	MaxQueueDepth   int   `json:"max_queue_depth"`
	SizeFlushes     int64 `json:"size_flushes"`
	IdleFlushes     int64 `json:"idle_flushes"`
	ExplicitFlushes int64 `json:"explicit_flushes"`
	ConflictFlushes int64 `json:"conflict_flushes"`
}

// newShardTrace flattens a shard.Stats snapshot into the trace row.
func newShardTrace(label string, st shard.Stats) shardTrace {
	tr := shardTrace{Label: label, Imbalance: st.Imbalance()}
	for i, s := range st.PerShard {
		tr.PerShard = append(tr.PerShard, shardRow{
			Shard:           i,
			OpsIn:           s.OpsIn,
			RequestsOut:     s.RequestsOut,
			Batches:         s.Batches,
			MaxQueueDepth:   s.MaxQueueDepth,
			SizeFlushes:     s.SizeFlushes,
			IdleFlushes:     s.IdleFlushes,
			ExplicitFlushes: s.ExplicitFlushes,
			ConflictFlushes: s.ConflictFlushes,
		})
	}
	return tr
}

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment ids (e1..e23); empty = all")
		maxprocs = flag.String("maxprocs", "", "comma-separated GOMAXPROCS values; the selected experiments run once per value (JSON outputs get a .procsN suffix)")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast run")
		seed     = flag.Int64("seed", 0, "workload RNG seed (0 = default)")
		jsonOut  = flag.Bool("json", false, "write machine-readable results where supported (e16, e18, e19)")
		jsonF    = flag.String("jsonout", "", "override the per-experiment -json output path")
		shards   = flag.Int("shards", 0, "pin e18 to one shard count S (0 = full sweep)")
		pipeline = flag.Bool("pipeline", false, "with -shards, use the pipelined dispatcher")
		faults   = flag.Int("faults", 0, "pin e19's failed-module sweep to {0, F} (0 = full ladder)")
		fsched   = flag.String("faultsched", "", "e19 dynamic fault schedule (\"churn\" = rolling single-module fail/recover)")
		traceF   = flag.String("trace", "", "capture per-round MPC events and write the JSON trajectory here")
		traceCap = flag.Int("tracecap", obs.DefaultTraceCap, "ring capacity for -trace (oldest events drop beyond it)")
		pprofA   = flag.String("pprof", "", "serve pprof + expvar + Prometheus /metrics on this address (e.g. :6060)")
		transp   = flag.String("transport", "", "restrict e22's cells to one MPC transport (\"inproc\" or \"tcp\"; empty = both)")
		servers  = flag.String("servers", "", "comma-separated external memserver addresses for e22's TCP cells (empty = in-process loopback cluster)")
		resolver = flag.String("resolver", "", "pin e23 to one resolution strategy (\"compiled\", \"computed\" or \"hybrid\"; empty = all)")
	)
	flag.Parse()

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	opts := experiments.Options{
		Quick:      *quick,
		Seed:       *seed,
		JSON:       *jsonOut,
		JSONPath:   *jsonF,
		Shards:     *shards,
		Pipeline:   *pipeline,
		Faults:     *faults,
		FaultSched: *fsched,
		Transport:  *transp,
		Resolver:   *resolver,
	}
	if *servers != "" {
		for _, a := range strings.Split(*servers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				opts.Servers = append(opts.Servers, a)
			}
		}
	}

	collector := obs.NewCollector()
	var tracer *obs.Tracer
	var shardTraces []shardTrace
	if *traceF != "" {
		tracer = obs.NewTracer(*traceCap)
		opts.Recorder = obs.Multi(tracer, collector)
		opts.Observer = collector
		opts.ShardStats = func(label string, st shard.Stats) {
			shardTraces = append(shardTraces, newShardTrace(label, st))
		}
		// E20 records per-client value-carrying traces here; the dump embeds
		// them under "consistency" for cmd/consistencycheck to re-verify.
		opts.Consistency = consistency.NewRecorder()
	}
	if *pprofA != "" {
		if opts.Observer == nil {
			// No tracer requested: still aggregate, so /metrics has data.
			opts.Recorder = collector
			opts.Observer = collector
		}
		collector.PublishExpvar("detshmem")
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := collector.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		go func() {
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Printf("serving pprof/expvar/metrics on %s\n\n", *pprofA)
	}

	procsList, err := parseMaxProcs(*maxprocs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smembench: %v\n", err)
		os.Exit(2)
	}

	ran := 0
	for _, procs := range procsList {
		o := opts
		if procs > 0 {
			runtime.GOMAXPROCS(procs)
			fmt.Printf("### GOMAXPROCS=%d ###\n\n", procs)
			if len(procsList) > 1 {
				// One JSON per sweep point; a single pinned value keeps the
				// plain path so scripts need not know about the suffix.
				o.JSONSuffix = fmt.Sprintf(".procs%d", procs)
			}
		}
		for _, r := range experiments.All() {
			if len(want) > 0 && !want[r.ID] {
				continue
			}
			fmt.Printf("=== %s: %s ===\n", strings.ToUpper(r.ID), r.Title)
			start := time.Now()
			if err := r.Run(os.Stdout, o); err != nil {
				fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
				os.Exit(1)
			}
			fmt.Printf("(%s completed in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
			ran++
		}
	}
	if len(procsList) > 1 {
		ran /= len(procsList)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; known ids:", *expFlag)
		for _, r := range experiments.All() {
			fmt.Fprintf(os.Stderr, " %s", r.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	if tracer != nil {
		if err := writeTrace(*traceF, tracer, collector, shardTraces, opts.Consistency); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeTrace dumps the captured trajectory and verifies it against the
// collector's summed protocol metrics: every MPC round recorded by the
// tracer must be a round some batch's Metrics.TotalRounds accounted for,
// every grant a Metrics.GrantedBids bid, and every issued bid either a
// traced live request or a bid the fault layer dropped at a failed module —
// Σ Requests + Σ DroppedBids == Σ IssuedBids, so the books balance exactly
// even under failure injection (instrumented systems install tracer and
// collector together, so the two views describe the same runs).
// parseMaxProcs parses the -maxprocs sweep list. An empty flag yields the
// single sentinel 0: one pass at the inherited GOMAXPROCS, untouched.
func parseMaxProcs(s string) ([]int, error) {
	if s == "" {
		return []int{0}, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 || p > 1024 {
			return nil, fmt.Errorf("bad -maxprocs value %q (want integers in [1, 1024])", part)
		}
		out = append(out, p)
	}
	return out, nil
}

func writeTrace(path string, tracer *obs.Tracer, collector *obs.Collector, shards []shardTrace, rec *consistency.Recorder) error {
	totals := tracer.Totals()
	dump := traceDump{
		Totals:    totals,
		Dropped:   tracer.Dropped(),
		Collector: collector.Snapshot(),
		Shards:    shards,
		Consistent: totals.Rounds == uint64(collector.Rounds.Load()) &&
			totals.Granted == uint64(collector.GrantedBids.Load()) &&
			totals.Requests+totals.DroppedBids == uint64(collector.IssuedBids.Load()),
		Events: tracer.Events(),
	}
	if rec != nil && rec.Ops() > 0 {
		dump.Consist = rec.TraceSet()
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(dump)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	fmt.Printf("trace: %d rounds (%d buffered, %d dropped) -> %s\n",
		totals.Rounds, len(dump.Events), dump.Dropped, path)
	if !dump.Consistent {
		return fmt.Errorf("trace: totals diverge from protocol metrics: traced rounds=%d granted=%d requests+dropped=%d, metrics rounds=%d granted=%d issued=%d",
			totals.Rounds, totals.Granted, totals.Requests+totals.DroppedBids,
			collector.Rounds.Load(), collector.GrantedBids.Load(), collector.IssuedBids.Load())
	}
	fmt.Printf("trace: totals consistent with protocol metrics (rounds=%d, granted=%d, issued=%d of which %d dropped at failed modules)\n",
		totals.Rounds, totals.Granted, collector.IssuedBids.Load(), totals.DroppedBids)
	return nil
}
