// Command memaudit certifies the structural properties of a memory
// organization: placement well-formedness, pairwise module intersections,
// load balance and sampled expansion. It is the practical answer to the
// paper's observation that randomly sampled organizations cannot be
// certified — point your scheme at it and read the report.
//
// Usage:
//
//	memaudit -scheme pp -n 5             # audit the PP93 instance
//	memaudit -scheme uw -n 5 -seed 9     # audit a sampled UW graph
//	memaudit -scheme mv|single|affine …
package main

import (
	"flag"
	"fmt"
	"os"

	"detshmem/internal/affine"
	"detshmem/internal/audit"
	"detshmem/internal/baseline"
	"detshmem/internal/core"
	"detshmem/internal/protocol"
)

func main() {
	var (
		scheme = flag.String("scheme", "pp", "pp | mv | single | uw | affine")
		nFlag  = flag.Int("n", 5, "extension degree for pp-derived sizes")
		seed   = flag.Int64("seed", 0, "audit sampling seed")
		pairs  = flag.Int("pairs", 0, "pair samples (0 = default)")
		vars   = flag.Uint64("vars", 0, "variable cap (0 = default)")
	)
	flag.Parse()

	s, err := core.New(1, *nFlag)
	fatal(err)
	var m protocol.Mapper
	switch *scheme {
	case "pp":
		idx, err := s.NewIndexer()
		fatal(err)
		m = protocol.NewCoreMapper(s, idx)
	case "mv":
		m, err = baseline.NewMV(s.NumModules, s.NumVariables, 2)
	case "single":
		m, err = baseline.NewSingleCopy(s.NumModules, s.NumVariables, baseline.PlaceHashed, uint64(*seed))
	case "uw":
		m, err = baseline.NewUW(s.NumModules, s.NumVariables, 4, uint64(*seed))
	case "affine":
		m, err = affine.New(337, 3)
	default:
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}
	fatal(err)

	r, err := audit.Run(m, audit.Options{Seed: *seed, PairSamples: *pairs, MaxVars: *vars})
	fatal(err)
	fmt.Println(r)
	if r.PlacementErrors > 0 {
		fmt.Fprintln(os.Stderr, "audit FAILED: placement errors present")
		os.Exit(1)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
