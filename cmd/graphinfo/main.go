// Command graphinfo inspects a memory-organization instance: its Fact 1
// parameters, a chosen variable's copy addresses, and a chosen module's
// stored variables. It exercises exactly the O(log N) address computations a
// processor would perform.
//
// Usage:
//
//	graphinfo -q 2 -n 5 [-var 17] [-module 9]
package main

import (
	"flag"
	"fmt"
	"os"

	"detshmem/internal/core"
)

func main() {
	var (
		qFlag   = flag.Int("q", 2, "base-field size q (power of 2)")
		nFlag   = flag.Int("n", 5, "extension degree n (>= 3)")
		varFlag = flag.Int64("var", -1, "variable index to locate (-1 = skip)")
		modFlag = flag.Int64("module", -1, "module index to list (-1 = skip)")
	)
	flag.Parse()

	m := 0
	for q := *qFlag; q > 1; q >>= 1 {
		if q%2 != 0 {
			fmt.Fprintln(os.Stderr, "q must be a power of 2")
			os.Exit(2)
		}
		m++
	}
	if m == 0 {
		fmt.Fprintln(os.Stderr, "q must be >= 2")
		os.Exit(2)
	}

	s, err := core.New(m, *nFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("instance: %s\n", s.Params())
	fmt.Printf("exponent: M = Θ(N^{3/2 - 3/(4n-2)}) = Θ(N^%.4f)\n",
		1.5-3.0/float64(4*s.Deg-2))

	idx, err := s.NewIndexer()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("indexer: %T (M = %d)\n", idx, idx.M())

	if *varFlag >= 0 {
		v := uint64(*varFlag)
		if v >= idx.M() {
			fmt.Fprintf(os.Stderr, "variable %d out of range [0,%d)\n", v, idx.M())
			os.Exit(2)
		}
		a := idx.Mat(v)
		fmt.Printf("\nvariable %d  coset representative %v\n", v, a)
		for c := 0; c < s.Copies; c++ {
			mod, off := s.CopyLocation(a, c)
			fmt.Printf("  copy %d: module %d, offset %d\n", c, mod, off)
		}
	}

	if *modFlag >= 0 {
		j := uint64(*modFlag)
		if j >= s.NumModules {
			fmt.Fprintf(os.Stderr, "module %d out of range [0,%d)\n", j, s.NumModules)
			os.Exit(2)
		}
		fmt.Printf("\nmodule %d  representative %v  (%d stored copies)\n",
			j, s.ModuleMat(j), s.ModuleSize)
		inv, canInvert := idx.(core.Inverter)
		limit := s.ModuleSize
		if limit > 16 {
			limit = 16
		}
		for k := uint32(0); k < limit; k++ {
			mat := s.ModuleVarMat(j, k)
			if canInvert {
				if i, ok := inv.Index(mat); ok {
					fmt.Printf("  offset %2d: variable %d\n", k, i)
					continue
				}
			}
			fmt.Printf("  offset %2d: coset %v\n", k, s.VarKey(mat))
		}
		if limit < s.ModuleSize {
			fmt.Printf("  … %d more\n", s.ModuleSize-limit)
		}
	}
}
