// Command consistencycheck certifies (or refutes) recorded client traces
// against the memory system's consistency contracts, offline and black-box:
// the input is only what each client submitted and what each read returned.
//
// Usage:
//
//	consistencycheck [-mode auto|pram|per-variable|both] [-q] FILE...
//
// Each FILE is JSON in any of the shapes internal/consistency reads: a full
// smembench -trace dump (runs nested under "consistency", as written by
// smembench -exp e20 -trace FILE), a bare trace set ({"runs": [...]}), or a
// single run. "-" reads stdin.
//
// With -mode auto (the default) each run is checked under the modes its
// recorded contract requires: total-order runs must satisfy both PRAM and
// per-variable consistency, per-variable runs only the latter. The other
// modes force one (or both) checks regardless of contract — useful to
// demonstrate that a sharded run is per-variable consistent yet not PRAM.
//
// For every violated run the checker prints a minimal counterexample: the
// shortest operation cycle (with the constraint that forced each edge) or
// the shortest chain forcing a stale read. Exit status: 0 when every run
// certifies, 1 when any run is violated, 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"detshmem/internal/consistency"
)

func main() {
	var (
		modeFlag = flag.String("mode", "auto", "auto, pram, per-variable, or both")
		quiet    = flag.Bool("q", false, "print only violated runs and the final verdict")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: consistencycheck [-mode auto|pram|per-variable|both] [-q] FILE...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	modesFor := func(c consistency.Contract) []consistency.Mode {
		switch *modeFlag {
		case "auto":
			return consistency.ModesFor(c)
		case "pram":
			return []consistency.Mode{consistency.ModePRAM}
		case "per-variable":
			return []consistency.Mode{consistency.ModePerVariable}
		case "both":
			return []consistency.Mode{consistency.ModePRAM, consistency.ModePerVariable}
		default:
			fmt.Fprintf(os.Stderr, "consistencycheck: unknown -mode %q\n", *modeFlag)
			os.Exit(2)
			return nil
		}
	}

	runs, violated := 0, 0
	for _, path := range flag.Args() {
		ts, err := readFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "consistencycheck: %s: %v\n", path, err)
			os.Exit(2)
		}
		for _, run := range ts.Runs {
			runs++
			contract := run.Contract
			if contract == "" {
				contract = consistency.ContractTotalOrder
			}
			bad := false
			for _, mode := range modesFor(contract) {
				rep := consistency.Check(run.Clients, mode)
				if rep.OK {
					if !*quiet {
						fmt.Printf("certified  %-30s %-14s %-13s %d ops, %d failed dropped, %d resurrected\n",
							label(path, run.Label), contract, mode, rep.OpsChecked, rep.DroppedFailed, rep.Resurrected)
					}
					continue
				}
				bad = true
				v := rep.First()
				fmt.Printf("VIOLATED   %-30s %-14s %-13s %s\n", label(path, run.Label), contract, mode, v.Kind)
				fmt.Printf("  %s\n", v.Message)
				printCounterexample(v)
			}
			if bad {
				violated++
			}
		}
	}
	if violated > 0 {
		fmt.Printf("%d of %d runs violated their contract\n", violated, runs)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("all %d runs certified\n", runs)
	}
}

func label(path, run string) string {
	if run == "" {
		return path
	}
	return run
}

// printCounterexample renders the violation's minimal witness: the ops in
// order, each edge annotated with the constraint that forced it.
func printCounterexample(v *consistency.Violation) {
	for i, op := range v.Ops {
		why := ""
		if i < len(v.Why) {
			why = "   [" + v.Why[i] + "]"
		}
		fmt.Printf("    client %d op %d: %s%s\n", op.Client, op.Index, op.Op, why)
	}
}

func readFile(path string) (*consistency.TraceSet, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return consistency.ReadTraceSet(r)
}
