// Command mpcrun executes an ad-hoc workload batch on the MPC under a chosen
// memory organization and prints the access metrics — a workbench for poking
// at the protocol.
//
// Usage:
//
//	mpcrun -q 2 -n 5 -batch 1023 -workload random|stride|gamma -op read|write \
//	       [-scheme pp|mv|single|uw] [-arb lowest|rr|random] [-trace]
//	       [-tracejson FILE] [-parallel]
//
// -tracejson captures every MPC round through the obs tracer and writes the
// machine-readable round trajectory (requests, grants, contention
// histogram, barrier wait) plus its totals, cross-checked against the
// batch's protocol metrics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"detshmem/internal/baseline"
	"detshmem/internal/core"
	"detshmem/internal/mpc"
	"detshmem/internal/obs"
	"detshmem/internal/protocol"
	"detshmem/internal/workload"
)

func main() {
	var (
		nFlag    = flag.Int("n", 5, "extension degree (q=2)")
		batch    = flag.Int("batch", 0, "batch size (0 = full N)")
		wl       = flag.String("workload", "random", "random | stride | gamma")
		op       = flag.String("op", "write", "read | write")
		scheme   = flag.String("scheme", "pp", "pp | mv | single | uw")
		arb      = flag.String("arb", "lowest", "lowest | rr | random")
		seed     = flag.Int64("seed", 1993, "workload seed")
		trace    = flag.Bool("trace", false, "print per-iteration live counts")
		traceOut = flag.String("tracejson", "", "write the per-round JSON trajectory here")
		parallel = flag.Bool("parallel", false, "use the persistent-worker-pool MPC engine")
	)
	flag.Parse()

	s, err := core.New(1, *nFlag)
	fatal(err)
	idx, err := s.NewIndexer()
	fatal(err)

	var mapper protocol.Mapper
	switch *scheme {
	case "pp":
		mapper = protocol.NewCoreMapper(s, idx)
	case "mv":
		mapper, err = baseline.NewMV(s.NumModules, s.NumVariables, 2)
	case "single":
		mapper, err = baseline.NewSingleCopy(s.NumModules, s.NumVariables, baseline.PlaceHashed, 7)
	case "uw":
		c := 1
		for (uint64(1) << uint(2*c)) < s.NumModules {
			c++
		}
		mapper, err = baseline.NewUW(s.NumModules, s.NumVariables, c, 7)
	default:
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}
	fatal(err)

	arbiter := mpc.ArbLowest
	switch *arb {
	case "rr":
		arbiter = mpc.ArbRoundRobin
	case "random":
		arbiter = mpc.ArbRandom
	}

	size := *batch
	if size == 0 || uint64(size) > s.NumModules {
		size = int(s.NumModules)
	}
	var vars []uint64
	switch *wl {
	case "random":
		vars = workload.DistinctRandom(rand.New(rand.NewSource(*seed)), s.NumVariables, size)
	case "stride":
		vars = workload.Stride(s.NumVariables, size, s.NumModules)
	case "gamma":
		vars, err = workload.GammaConcentrated(s, idx, 0, size)
		fatal(err)
	default:
		fatal(fmt.Errorf("unknown workload %q", *wl))
	}

	var tracer *obs.Tracer
	cfg := protocol.Config{Arb: arbiter, Seed: uint64(*seed), TraceLive: *trace, Parallel: *parallel}
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
		cfg.Recorder = tracer
	}
	sys, err := protocol.NewGenericSystem(mapper, cfg)
	fatal(err)
	defer sys.Close()

	reqs := make([]protocol.Request, len(vars))
	theOp := protocol.Write
	if *op == "read" {
		theOp = protocol.Read
	}
	for i, v := range vars {
		reqs[i] = protocol.Request{Var: v, Op: theOp, Value: uint64(i)}
	}
	res, err := sys.Access(reqs)
	fatal(err)

	m := res.Metrics
	fmt.Printf("scheme=%s workload=%s op=%s N=%d M=%d batch=%d\n",
		mapper.Name(), *wl, *op, mapper.NumModules(), mapper.NumVars(), len(vars))
	fmt.Printf("phases=%d Φ=%d totalRounds=%d copyAccesses=%d\n",
		m.Phases, m.MaxIterations, m.TotalRounds, m.CopyAccesses)
	fmt.Printf("perPhase=%v\n", m.PhaseIterations)
	if *trace {
		for p, tr := range m.LiveTrace {
			fmt.Printf("phase %d live: %v\n", p, tr)
		}
	}
	if tracer != nil {
		totals := tracer.Totals()
		if totals.Rounds != uint64(m.TotalRounds) || totals.Granted != uint64(m.GrantedBids) {
			fatal(fmt.Errorf("trace totals diverge from metrics: traced rounds=%d granted=%d, metrics rounds=%d granted=%d",
				totals.Rounds, totals.Granted, m.TotalRounds, m.GrantedBids))
		}
		f, err := os.Create(*traceOut)
		fatal(err)
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(obs.TraceDump{Totals: totals, Dropped: tracer.Dropped(), Events: tracer.Events()})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fatal(err)
		fmt.Printf("trace: %d rounds -> %s (consistent with batch metrics: granted=%d)\n",
			totals.Rounds, *traceOut, totals.Granted)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
