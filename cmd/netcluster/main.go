// netcluster is the CI harness for the networked MPC: it launches a
// loopback cluster of memserver processes, drives smembench through them
// over TCP with tracing on, injects the experiment's process-level fault
// when the marker line arms it, and then certifies the aftermath:
//
//   - smembench itself must exit 0 — its degraded cell gates itself and
//     certifies every cell's recorded client trace;
//   - the benchmark JSON must confirm the degraded cell stayed within bound;
//   - cmd/consistencycheck must re-certify the dumped traces offline;
//   - the surviving memservers must drain and exit 0 on SIGTERM.
//
// Two drills, selected with -exp:
//
//	e22  (default) SIGKILL one server at the kill marker and leave it dead:
//	     the quorum re-selection drill, gated on the exact stranding bound;
//	e24  SIGKILL one server at the repair marker and immediately restart it
//	     on the same address with an empty store: the self-healing drill.
//	     The reborn server's generation token must route its range through
//	     the repair queue, the sweep must rebuild every lost copy over the
//	     wire, and every committed value must read back exactly. The
//	     restarted victim is then a full survivor and must drain cleanly.
//
// Any failure exits nonzero. Usage (CI builds the binaries first):
//
//	go build -o bin/ ./cmd/...
//	./bin/netcluster -bin ./bin -servers 4 -quick -out /tmp/netcluster
//	./bin/netcluster -bin ./bin -exp e24 -out /tmp/netcluster-repair
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Keep in sync with the producers: memserver's readiness line, E22's kill
// marker (internal/experiments/e22.go) and E24's repair-drill marker
// (internal/experiments/e24.go).
const (
	readyPrefix  = "memserver: ready on "
	killMarker   = "e22: degraded phase armed -- kill one memserver now"
	repairMarker = "e24: repair drill armed -- kill one memserver now and restart it wiped on the same address"
)

func main() {
	var (
		bin     = flag.String("bin", "./bin", "directory holding the memserver, smembench and consistencycheck binaries")
		servers = flag.Int("servers", 4, "memserver processes to launch")
		n       = flag.Int("n", 5, "scheme extension degree (memserver/smembench -n must agree)")
		quick   = flag.Bool("quick", true, "pass -quick to smembench")
		out     = flag.String("out", "", "directory for trace and JSON artifacts (default: a temp dir)")
		victim  = flag.Int("victim", 1, "index of the server to SIGKILL at the marker")
		exp     = flag.String("exp", "e22", "drill to run: e22 (kill) or e24 (wipe-restart repair)")
		timeout = flag.Duration("timeout", 10*time.Minute, "overall watchdog")
	)
	flag.Parse()
	if *exp != "e22" && *exp != "e24" {
		fmt.Fprintf(os.Stderr, "netcluster: unknown -exp %q\n", *exp)
		os.Exit(2)
	}
	if err := run(*bin, *servers, *n, *victim, *quick, *out, *exp, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "netcluster: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("netcluster: PASS")
}

type server struct {
	idx  int
	cmd  *exec.Cmd
	addr string
	done chan error
}

func run(bin string, k, n, victim int, quick bool, out, exp string, timeout time.Duration) error {
	if victim < 0 || victim >= k {
		return fmt.Errorf("victim %d out of range [0,%d)", victim, k)
	}
	if out == "" {
		dir, err := os.MkdirTemp("", "netcluster")
		if err != nil {
			return err
		}
		out = dir
	} else if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)

	// Launch the cluster. -addr :0 makes each server pick a free port and
	// announce it in the readiness line, so there is no port race.
	cluster := make([]*server, 0, k)
	defer func() {
		for _, sv := range cluster {
			if sv.cmd.Process != nil {
				sv.cmd.Process.Kill()
			}
		}
	}()
	for i := 0; i < k; i++ {
		sv, err := startServer(bin, i, k, n, deadline)
		if err != nil {
			return err
		}
		cluster = append(cluster, sv)
		fmt.Printf("netcluster: server %d up on %s\n", i, sv.addr)
	}
	addrs := make([]string, k)
	for i, sv := range cluster {
		addrs[i] = sv.addr
	}

	// Drive the experiment over the cluster, injecting the victim's fault
	// at the marker.
	marker := killMarker
	tracePath := filepath.Join(out, "e22trace.json")
	benchPath := filepath.Join(out, "BENCH_PR8.json")
	if exp == "e24" {
		marker = repairMarker
		tracePath = filepath.Join(out, "e24trace.json")
		benchPath = filepath.Join(out, "BENCH_PR10.json")
	}
	args := []string{
		"-exp", exp, "-transport", "tcp",
		"-servers", strings.Join(addrs, ","),
		"-trace", tracePath, "-jsonout", benchPath,
	}
	if quick {
		args = append(args, "-quick")
	}
	smem := exec.Command(filepath.Join(bin, "smembench"), args...)
	smem.Stderr = os.Stderr
	stdout, err := smem.StdoutPipe()
	if err != nil {
		return err
	}
	if err := smem.Start(); err != nil {
		return fmt.Errorf("starting smembench: %w", err)
	}
	killed := false
	restarted := false
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if strings.Contains(line, marker) && !killed {
			killed = true
			fmt.Printf("netcluster: SIGKILL server %d (%s)\n", victim, cluster[victim].addr)
			if err := cluster[victim].cmd.Process.Kill(); err != nil {
				return fmt.Errorf("killing server %d: %w", victim, err)
			}
			if exp == "e24" {
				// Wipe-restart: a fresh memserver process — empty store, new
				// generation token — rebinds the victim's address while the
				// clients are mid-reconnect.
				<-cluster[victim].done
				sv, err := startServerAt(bin, victim, k, n, cluster[victim].addr, deadline)
				if err != nil {
					return fmt.Errorf("restarting server %d: %w", victim, err)
				}
				cluster[victim] = sv
				restarted = true
				fmt.Printf("netcluster: server %d restarted wiped on %s\n", victim, sv.addr)
			}
		}
	}
	if err := smem.Wait(); err != nil {
		return fmt.Errorf("smembench: %w", err)
	}
	if !killed {
		return fmt.Errorf("smembench finished without printing the marker %q", marker)
	}

	// The degraded cell's gate, re-checked from the JSON the run wrote.
	if err := checkBench(benchPath, exp); err != nil {
		return err
	}

	// Offline re-certification of the recorded client traces.
	cc := exec.Command(filepath.Join(bin, "consistencycheck"), tracePath)
	cc.Stdout, cc.Stderr = os.Stdout, os.Stderr
	if err := cc.Run(); err != nil {
		return fmt.Errorf("consistencycheck: %w", err)
	}

	// Survivors must drain and exit 0 on SIGTERM (the graceful-shutdown
	// contract). In the e22 drill the killed victim stays dead and reports
	// its SIGKILL; in the e24 drill the restarted victim is a full survivor
	// held to the same contract.
	survivors := 0
	for i, sv := range cluster {
		if i == victim && !restarted {
			<-sv.done
			continue
		}
		survivors++
		sv.cmd.Process.Signal(syscall.SIGTERM)
	}
	for i, sv := range cluster {
		if i == victim && !restarted {
			continue
		}
		select {
		case err := <-sv.done:
			if err != nil {
				return fmt.Errorf("server %d did not drain cleanly on SIGTERM: %v", i, err)
			}
		case <-time.After(time.Until(deadline)):
			return fmt.Errorf("server %d hung on SIGTERM", i)
		}
	}
	fmt.Printf("netcluster: %d survivors drained cleanly; artifacts in %s\n", survivors, out)
	return nil
}

// startServer launches one memserver on a kernel-chosen port and waits for
// its readiness line to learn the address.
func startServer(bin string, i, k, n int, deadline time.Time) (*server, error) {
	return startServerAt(bin, i, k, n, "127.0.0.1:0", deadline)
}

// startServerAt launches one memserver on the given address — the e24 drill
// uses it to rebind a killed victim's port with a fresh (wiped) process.
func startServerAt(bin string, i, k, n int, addr string, deadline time.Time) (*server, error) {
	cmd := exec.Command(filepath.Join(bin, "memserver"),
		"-addr", addr, "-m", "1", "-n", strconv.Itoa(n),
		"-index", strconv.Itoa(i), "-servers", strconv.Itoa(k))
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting memserver %d: %w", i, err)
	}
	sv := &server{idx: i, cmd: cmd, done: make(chan error, 1)}
	ready := make(chan string, 1)
	var once sync.Once
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, readyPrefix); ok {
				if fields := strings.Fields(rest); len(fields) > 0 {
					once.Do(func() { ready <- fields[0] })
				}
			}
		}
		sv.done <- cmd.Wait()
	}()
	select {
	case addr := <-ready:
		sv.addr = addr
		return sv, nil
	case err := <-sv.done:
		return nil, fmt.Errorf("memserver %d exited before ready: %v", i, err)
	case <-time.After(time.Until(deadline)):
		cmd.Process.Kill()
		return nil, fmt.Errorf("memserver %d never became ready", i)
	}
}

// checkBench re-validates the degraded cell's gate and certification flags
// from the benchmark JSON smembench wrote. The e22 drill requires its
// tcp-kill1 row; the e24 drill requires a tcp-drill row whose repair
// backlog fully drained.
func checkBench(path, exp string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep struct {
		Rows []struct {
			Cell           string  `json:"cell"`
			Certified      bool    `json:"certified"`
			WithinBound    bool    `json:"within_bound"`
			StrandRate     float64 `json:"strand_rate"`
			Bound          float64 `json:"bound"`
			BacklogDrained bool    `json:"backlog_drained"`
			RepairedMods   int64   `json:"repaired_modules"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	want := "tcp-kill1"
	if exp == "e24" {
		want = "tcp-drill"
	}
	seen := false
	for _, r := range rep.Rows {
		if !r.Certified {
			return fmt.Errorf("%s: cell %q not certified", path, r.Cell)
		}
		if !r.WithinBound {
			return fmt.Errorf("%s: cell %q stranding %.4f above bound %.4f", path, r.Cell, r.StrandRate, r.Bound)
		}
		if r.Cell != want {
			continue
		}
		seen = true
		switch want {
		case "tcp-kill1":
			fmt.Printf("netcluster: kill cell stranding %.4f <= bound %.4f, certified\n", r.StrandRate, r.Bound)
		case "tcp-drill":
			if !r.BacklogDrained {
				return fmt.Errorf("%s: tcp-drill repair backlog did not drain", path)
			}
			fmt.Printf("netcluster: repair drill rebuilt %d modules, backlog drained, certified\n", r.RepairedMods)
		}
	}
	if !seen {
		return fmt.Errorf("%s: no %s row", path, want)
	}
	return nil
}
