// netcluster is the CI harness for the networked MPC: it launches a
// loopback cluster of memserver processes, drives smembench's E22 through
// them over TCP with tracing on, SIGKILLs one server when the experiment
// arms its degraded phase, and then certifies the aftermath:
//
//   - smembench itself must exit 0 — its kill cell gates the op-stranding
//     rate against the exact post-kill bound and certifies every cell's
//     recorded client trace;
//   - the benchmark JSON must confirm the kill cell stayed within bound;
//   - cmd/consistencycheck must re-certify the dumped traces offline;
//   - the surviving memservers must drain and exit 0 on SIGTERM.
//
// Any failure exits nonzero. Usage (CI builds the binaries first):
//
//	go build -o bin/ ./cmd/...
//	./bin/netcluster -bin ./bin -servers 4 -quick -out /tmp/netcluster
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Keep in sync with the producers: memserver's readiness line and E22's
// kill marker (internal/experiments/e22.go).
const (
	readyPrefix = "memserver: ready on "
	killMarker  = "e22: degraded phase armed -- kill one memserver now"
)

func main() {
	var (
		bin     = flag.String("bin", "./bin", "directory holding the memserver, smembench and consistencycheck binaries")
		servers = flag.Int("servers", 4, "memserver processes to launch")
		n       = flag.Int("n", 5, "scheme extension degree (memserver/smembench -n must agree)")
		quick   = flag.Bool("quick", true, "pass -quick to smembench")
		out     = flag.String("out", "", "directory for trace and JSON artifacts (default: a temp dir)")
		victim  = flag.Int("victim", 1, "index of the server to SIGKILL at the marker")
		timeout = flag.Duration("timeout", 10*time.Minute, "overall watchdog")
	)
	flag.Parse()
	if err := run(*bin, *servers, *n, *victim, *quick, *out, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "netcluster: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("netcluster: PASS")
}

type server struct {
	idx  int
	cmd  *exec.Cmd
	addr string
	done chan error
}

func run(bin string, k, n, victim int, quick bool, out string, timeout time.Duration) error {
	if victim < 0 || victim >= k {
		return fmt.Errorf("victim %d out of range [0,%d)", victim, k)
	}
	if out == "" {
		dir, err := os.MkdirTemp("", "netcluster")
		if err != nil {
			return err
		}
		out = dir
	} else if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)

	// Launch the cluster. -addr :0 makes each server pick a free port and
	// announce it in the readiness line, so there is no port race.
	cluster := make([]*server, 0, k)
	defer func() {
		for _, sv := range cluster {
			if sv.cmd.Process != nil {
				sv.cmd.Process.Kill()
			}
		}
	}()
	for i := 0; i < k; i++ {
		sv, err := startServer(bin, i, k, n, deadline)
		if err != nil {
			return err
		}
		cluster = append(cluster, sv)
		fmt.Printf("netcluster: server %d up on %s\n", i, sv.addr)
	}
	addrs := make([]string, k)
	for i, sv := range cluster {
		addrs[i] = sv.addr
	}

	// Drive E22 over the cluster, killing the victim at the marker.
	tracePath := filepath.Join(out, "e22trace.json")
	benchPath := filepath.Join(out, "BENCH_PR8.json")
	args := []string{
		"-exp", "e22", "-transport", "tcp",
		"-servers", strings.Join(addrs, ","),
		"-trace", tracePath, "-jsonout", benchPath,
	}
	if quick {
		args = append(args, "-quick")
	}
	smem := exec.Command(filepath.Join(bin, "smembench"), args...)
	smem.Stderr = os.Stderr
	stdout, err := smem.StdoutPipe()
	if err != nil {
		return err
	}
	if err := smem.Start(); err != nil {
		return fmt.Errorf("starting smembench: %w", err)
	}
	killed := false
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if strings.Contains(line, killMarker) && !killed {
			killed = true
			fmt.Printf("netcluster: SIGKILL server %d (%s)\n", victim, cluster[victim].addr)
			if err := cluster[victim].cmd.Process.Kill(); err != nil {
				return fmt.Errorf("killing server %d: %w", victim, err)
			}
		}
	}
	if err := smem.Wait(); err != nil {
		return fmt.Errorf("smembench: %w", err)
	}
	if !killed {
		return fmt.Errorf("smembench finished without printing the kill marker %q", killMarker)
	}

	// The stranding gate, re-checked from the JSON the run wrote.
	if err := checkBench(benchPath); err != nil {
		return err
	}

	// Offline re-certification of the recorded client traces.
	cc := exec.Command(filepath.Join(bin, "consistencycheck"), tracePath)
	cc.Stdout, cc.Stderr = os.Stdout, os.Stderr
	if err := cc.Run(); err != nil {
		return fmt.Errorf("consistencycheck: %w", err)
	}

	// Survivors must drain and exit 0 on SIGTERM (the graceful-shutdown
	// contract); the killed victim reports its SIGKILL.
	for i, sv := range cluster {
		if i == victim {
			<-sv.done
			continue
		}
		sv.cmd.Process.Signal(syscall.SIGTERM)
	}
	for i, sv := range cluster {
		if i == victim {
			continue
		}
		select {
		case err := <-sv.done:
			if err != nil {
				return fmt.Errorf("server %d did not drain cleanly on SIGTERM: %v", i, err)
			}
		case <-time.After(time.Until(deadline)):
			return fmt.Errorf("server %d hung on SIGTERM", i)
		}
	}
	fmt.Printf("netcluster: %d survivors drained cleanly; artifacts in %s\n", k-1, out)
	return nil
}

// startServer launches one memserver on a kernel-chosen port and waits for
// its readiness line to learn the address.
func startServer(bin string, i, k, n int, deadline time.Time) (*server, error) {
	cmd := exec.Command(filepath.Join(bin, "memserver"),
		"-addr", "127.0.0.1:0", "-m", "1", "-n", strconv.Itoa(n),
		"-index", strconv.Itoa(i), "-servers", strconv.Itoa(k))
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting memserver %d: %w", i, err)
	}
	sv := &server{idx: i, cmd: cmd, done: make(chan error, 1)}
	ready := make(chan string, 1)
	var once sync.Once
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, readyPrefix); ok {
				if fields := strings.Fields(rest); len(fields) > 0 {
					once.Do(func() { ready <- fields[0] })
				}
			}
		}
		sv.done <- cmd.Wait()
	}()
	select {
	case addr := <-ready:
		sv.addr = addr
		return sv, nil
	case err := <-sv.done:
		return nil, fmt.Errorf("memserver %d exited before ready: %v", i, err)
	case <-time.After(time.Until(deadline)):
		cmd.Process.Kill()
		return nil, fmt.Errorf("memserver %d never became ready", i)
	}
}

// checkBench re-validates the kill cell's stranding gate and certification
// flags from the benchmark JSON smembench wrote.
func checkBench(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep struct {
		Rows []struct {
			Cell        string  `json:"cell"`
			Certified   bool    `json:"certified"`
			WithinBound bool    `json:"within_bound"`
			StrandRate  float64 `json:"strand_rate"`
			Bound       float64 `json:"bound"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	seenKill := false
	for _, r := range rep.Rows {
		if !r.Certified {
			return fmt.Errorf("%s: cell %q not certified", path, r.Cell)
		}
		if !r.WithinBound {
			return fmt.Errorf("%s: cell %q stranding %.4f above bound %.4f", path, r.Cell, r.StrandRate, r.Bound)
		}
		if r.Cell == "tcp-kill1" {
			seenKill = true
			fmt.Printf("netcluster: kill cell stranding %.4f <= bound %.4f, certified\n", r.StrandRate, r.Bound)
		}
	}
	if !seenKill {
		return fmt.Errorf("%s: no tcp-kill1 row", path)
	}
	return nil
}
