package main

import (
	"errors"
	"net"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"detshmem/internal/netmpc"
)

// fakeListener implements net.Listener without a socket: Accept blocks
// until Close, which is exactly the idle-server shape the graceful-shutdown
// path must handle.
type fakeListener struct {
	closed  chan struct{}
	closes  atomic.Int32
	accepts atomic.Int32
}

func newFakeListener() *fakeListener { return &fakeListener{closed: make(chan struct{})} }

func (l *fakeListener) Accept() (net.Conn, error) {
	l.accepts.Add(1)
	<-l.closed
	return nil, net.ErrClosed
}

func (l *fakeListener) Close() error {
	if l.closes.Add(1) == 1 {
		close(l.closed)
	}
	return nil
}

func (l *fakeListener) Addr() net.Addr {
	return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
}

// TestServeDrainsOnSignal pins the SIGTERM contract: serve returns nil (the
// process exits 0), the listener was closed, and it happens promptly — no
// hang waiting for connections that never come.
func TestServeDrainsOnSignal(t *testing.T) {
	for _, sig := range []os.Signal{syscall.SIGTERM, syscall.SIGINT} {
		ln := newFakeListener()
		sv := netmpc.NewServer(netmpc.ServerConfig{
			Modules: 63, AddrSpace: 252, RangeLo: 0, RangeHi: 63,
		})
		sigc := make(chan os.Signal, 1)
		done := make(chan error, 1)
		go func() { done <- serve(sv, ln, sigc, 100*time.Millisecond) }()

		// Let the accept loop start, then deliver the signal.
		waitCond(t, func() bool { return ln.accepts.Load() > 0 })
		sigc <- sig

		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%v: serve returned %v, want nil", sig, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%v: serve did not drain", sig)
		}
		if ln.closes.Load() == 0 {
			t.Fatalf("%v: listener was not closed", sig)
		}
	}
}

// TestServeReturnsListenerError pins the non-signal exit: a listener that
// fails with a real error propagates it (nonzero exit), it is not mistaken
// for a drain.
func TestServeReturnsListenerError(t *testing.T) {
	boom := errors.New("boom")
	ln := &errListener{err: boom}
	sv := netmpc.NewServer(netmpc.ServerConfig{Modules: 63, AddrSpace: 252, RangeHi: 63})
	sigc := make(chan os.Signal, 1)
	err := serve(sv, ln, sigc, time.Millisecond)
	if !errors.Is(err, boom) {
		t.Fatalf("serve = %v, want boom", err)
	}
}

type errListener struct{ err error }

func (l *errListener) Accept() (net.Conn, error) { return nil, l.err }
func (l *errListener) Close() error              { return nil }
func (l *errListener) Addr() net.Addr            { return &net.TCPAddr{} }

func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
