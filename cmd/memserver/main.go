// memserver serves one contiguous module range of a PP93 deployment over
// TCP (see internal/netmpc). A cluster of k memservers, one per range of
// Range(i, k, NumModules), plus any number of thin constructive-map clients
// (smembench -transport tcp, or any protocol.System over netmpc.Dial) forms
// a networked MPC.
//
// Usage:
//
//	memserver -addr :7001 -m 1 -n 5 -index 0 -servers 4
//
// serves the first quarter of the q=2, n=5 scheme's modules. All servers of
// one cluster must agree on -m, -n and -servers; clients that disagree are
// rejected at handshake with a typed error.
//
// On SIGTERM or SIGINT the server drains: in-flight rounds are answered,
// new frames and connections are refused, and the process exits 0.
//
// The stores are in-memory, so a restarted memserver is a wiped memserver.
// Every process mints a fresh store generation (logged at startup and
// carried in each handshake ack); a client that reconnects and sees the
// generation change re-admits the range through its repair queue — the
// modules serve writes immediately but count toward read quorums only after
// the self-healing sweep has rebuilt and certified them — instead of
// silently trusting the empty store.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"detshmem/internal/core"
	"detshmem/internal/netmpc"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7001", "listen address")
		m       = flag.Int("m", 1, "scheme parameter m (q = 2^m)")
		n       = flag.Int("n", 5, "scheme extension degree n")
		index   = flag.Int("index", 0, "this server's index in the cluster")
		servers = flag.Int("servers", 4, "total servers in the cluster")
		grace   = flag.Duration("grace", 2*time.Second, "drain grace on shutdown")
		verbose = flag.Bool("v", false, "log connection-level diagnostics")
	)
	flag.Parse()
	if *index < 0 || *servers < 1 || *index >= *servers {
		fmt.Fprintf(os.Stderr, "memserver: bad -index %d / -servers %d\n", *index, *servers)
		os.Exit(2)
	}
	s, err := core.New(*m, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memserver: %v\n", err)
		os.Exit(2)
	}
	lo, hi := netmpc.Range(*index, *servers, int64(s.NumModules))
	cfg := netmpc.ServerConfig{
		Q:         s.Q,
		N:         uint32(s.Deg),
		Modules:   s.NumModules,
		AddrSpace: s.NumModules * uint64(s.ModuleSize),
		RangeLo:   uint64(lo),
		RangeHi:   uint64(hi),
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	sv := netmpc.NewServer(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memserver: %v\n", err)
		os.Exit(1)
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	fmt.Printf("memserver: ready on %s serving modules [%d,%d) of %d (q=%d n=%d) gen %#x\n",
		ln.Addr(), lo, hi, s.NumModules, s.Q, s.Deg, sv.Gen())
	if err := serve(sv, ln, sigc, *grace); err != nil {
		fmt.Fprintf(os.Stderr, "memserver: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("memserver: drained %d frames, exiting\n", sv.FramesServed())
}

// serve runs the server on ln until it stops on its own (listener error) or
// a signal arrives, in which case it drains gracefully and returns the
// Serve result — nil on an orderly stop. Split from main so tests can drive
// it with a fake listener and a synthetic signal.
func serve(sv *netmpc.Server, ln net.Listener, sig <-chan os.Signal, grace time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- sv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("memserver: %v, draining (grace %v)\n", s, grace)
		sv.Shutdown(grace)
		return <-errc
	}
}
