// Package detshmem is a reproduction of "A Practical Constructive Scheme for
// Deterministic Shared-Memory Access" (A. Pietracaprina and F.P. Preparata,
// SPAA 1993): an explicit memory organization distributing
// M ∈ Θ(N^{1.5−O(1/log N)}) shared variables over N memory modules with O(1)
// copies per variable, such that any N' ≤ N distinct variables can be
// accessed in O((N')^{1/3} log* N' + log N) worst-case time on the Module
// Parallel Computer, with O(log N)-time, O(1)-space address computation.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are under cmd/ and examples/. The
// benchmarks in bench_test.go regenerate the measured counterpart of every
// analytical claim in the paper (experiments E1–E10, recorded in
// EXPERIMENTS.md).
package detshmem
